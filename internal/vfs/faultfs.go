package vfs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjected is the root of every fault injected by a FaultFS. Layers above
// can distinguish a simulated disk failure from a real bug with
// errors.Is(err, vfs.ErrInjected).
var ErrInjected = errors.New("vfs: injected fault")

// FaultConfig arms a FaultFS with a seeded fault distribution. All
// probabilities are per-operation in [0, 1]; zero disables that fault kind.
// The same seed always produces the same fault decisions for the same
// operation sequence, which is what makes chaos runs replayable.
type FaultConfig struct {
	// Seed initializes the fault decision stream.
	Seed int64
	// WriteErrProb fails a Write outright (no bytes reach the file).
	WriteErrProb float64
	// PartialWriteProb writes only a prefix of the buffer, then fails — a
	// torn write. On a WAL segment the CRC framing detects the torn tail at
	// replay.
	PartialWriteProb float64
	// SyncErrProb fails a Sync: data was buffered but durability is unknown,
	// exactly the contract of a failed fsync.
	SyncErrProb float64
	// ReadErrProb fails a ReadAt.
	ReadErrProb float64
	// ReadCorruptProb silently flips one bit of a ReadAt result — the read
	// "succeeds" but returns wrong bytes, modelling at-rest bit rot and
	// firmware misreads that no error path reports. Only checksum
	// verification above the VFS can catch it.
	ReadCorruptProb float64
	// SpikeProb injects SpikeLatency of extra delay before an operation — a
	// disk stall rather than an error.
	SpikeProb float64
	// SpikeLatency is the stall charged by a latency spike.
	SpikeLatency time.Duration
	// PathSubstr, when non-empty, limits injection to files whose name
	// contains the substring (e.g. "/wal/" to fault only commit logs).
	PathSubstr string
}

func (c FaultConfig) enabled() bool {
	return c.WriteErrProb > 0 || c.PartialWriteProb > 0 || c.SyncErrProb > 0 ||
		c.ReadErrProb > 0 || c.ReadCorruptProb > 0 || c.SpikeProb > 0
}

// FaultStats counts injected faults by kind. Counters are cumulative across
// Arm/Disarm cycles and safe for concurrent use.
type FaultStats struct {
	WriteErrs     atomic.Int64
	PartialWrites atomic.Int64
	SyncErrs      atomic.Int64
	ReadErrs      atomic.Int64
	Corruptions   atomic.Int64
	Spikes        atomic.Int64
}

// Total returns the number of injected faults of every kind (spikes
// included: a stall is a fault even though the operation succeeds).
func (s *FaultStats) Total() int64 {
	return s.WriteErrs.Load() + s.PartialWrites.Load() + s.SyncErrs.Load() +
		s.ReadErrs.Load() + s.Corruptions.Load() + s.Spikes.Load()
}

// FaultFS wraps an FS and injects failed/partial writes, fsync errors, read
// errors and latency spikes from a seeded decision stream. It composes with
// LatencyFS — the chaos harness stacks LatencyFS(FaultFS(MemFS)) so faulted
// I/O still pays simulated disk latency. A FaultFS starts disarmed (fully
// transparent); Arm installs a fault distribution and Disarm removes it.
type FaultFS struct {
	inner FS

	// Stats accumulates injected-fault counters for the FS lifetime.
	Stats FaultStats

	mu    sync.Mutex
	cfg   FaultConfig
	rng   *rand.Rand
	armed atomic.Bool

	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// NewFaultFS wraps inner. The returned FS is disarmed: it injects nothing
// until Arm is called.
func NewFaultFS(inner FS) *FaultFS {
	return &FaultFS{inner: inner, sleep: time.Sleep}
}

// Arm installs (or replaces) the fault distribution, reseeding the decision
// stream from cfg.Seed.
func (fs *FaultFS) Arm(cfg FaultConfig) {
	fs.mu.Lock()
	fs.cfg = cfg
	fs.rng = rand.New(rand.NewSource(cfg.Seed))
	fs.mu.Unlock()
	fs.armed.Store(cfg.enabled())
}

// Disarm stops all injection; the FS becomes transparent again.
func (fs *FaultFS) Disarm() {
	fs.armed.Store(false)
	fs.mu.Lock()
	fs.cfg = FaultConfig{}
	fs.mu.Unlock()
}

// Armed reports whether a fault distribution is installed.
func (fs *FaultFS) Armed() bool { return fs.armed.Load() }

// decision is one sampled fault outcome for an operation.
type decision struct {
	fail        bool
	partial     float64 // fraction of the buffer to write before failing
	corrupt     bool    // silently flip one bit of a successful read
	corruptFrac float64 // position of the flipped bit, as a fraction of the buffer
	spike       time.Duration
}

// op selects which fault probabilities apply to an operation.
type op int

const (
	opWrite op = iota
	opRead
	opSync
)

// decide samples the fault outcome for one operation on the named file.
func (fs *FaultFS) decide(name string, kind op) decision {
	if !fs.armed.Load() {
		return decision{}
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if fs.cfg.PathSubstr != "" && !strings.Contains(name, fs.cfg.PathSubstr) {
		return decision{}
	}
	var errProb, partialProb float64
	switch kind {
	case opWrite:
		errProb, partialProb = fs.cfg.WriteErrProb, fs.cfg.PartialWriteProb
	case opRead:
		errProb = fs.cfg.ReadErrProb
	case opSync:
		errProb = fs.cfg.SyncErrProb
	}
	var d decision
	if fs.cfg.SpikeProb > 0 && fs.rng.Float64() < fs.cfg.SpikeProb {
		d.spike = fs.cfg.SpikeLatency
	}
	if errProb > 0 && fs.rng.Float64() < errProb {
		d.fail = true
		return d
	}
	if partialProb > 0 && fs.rng.Float64() < partialProb {
		d.fail = true
		d.partial = fs.rng.Float64()
		return d
	}
	if kind == opRead && fs.cfg.ReadCorruptProb > 0 && fs.rng.Float64() < fs.cfg.ReadCorruptProb {
		d.corrupt = true
		d.corruptFrac = fs.rng.Float64()
	}
	return d
}

// Create implements FS.
func (fs *FaultFS) Create(name string) (File, error) {
	f, err := fs.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, fs: fs, name: name}, nil
}

// Open implements FS.
func (fs *FaultFS) Open(name string) (File, error) {
	f, err := fs.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{inner: f, fs: fs, name: name}, nil
}

// Remove implements FS.
func (fs *FaultFS) Remove(name string) error { return fs.inner.Remove(name) }

// Rename implements FS.
func (fs *FaultFS) Rename(oldName, newName string) error {
	return fs.inner.Rename(oldName, newName)
}

// List implements FS.
func (fs *FaultFS) List(prefix string) ([]string, error) { return fs.inner.List(prefix) }

// Exists implements FS.
func (fs *FaultFS) Exists(name string) (bool, error) { return fs.inner.Exists(name) }

type faultFile struct {
	inner File
	fs    *FaultFS
	name  string
}

func (f *faultFile) Write(p []byte) (int, error) {
	d := f.fs.decide(f.name, opWrite)
	if d.spike > 0 {
		f.fs.Stats.Spikes.Add(1)
		f.fs.sleep(d.spike)
	}
	if d.fail {
		if d.partial > 0 && len(p) > 0 {
			// Torn write: a prefix lands, then the "disk" fails.
			n := int(d.partial * float64(len(p)))
			if n >= len(p) {
				n = len(p) - 1
			}
			if n > 0 {
				f.inner.Write(p[:n])
			}
			f.fs.Stats.PartialWrites.Add(1)
			return n, fmt.Errorf("%w: partial write (%d/%d bytes) on %s", ErrInjected, n, len(p), f.name)
		}
		f.fs.Stats.WriteErrs.Add(1)
		return 0, fmt.Errorf("%w: write on %s", ErrInjected, f.name)
	}
	return f.inner.Write(p)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	d := f.fs.decide(f.name, opRead)
	if d.spike > 0 {
		f.fs.Stats.Spikes.Add(1)
		f.fs.sleep(d.spike)
	}
	if d.fail {
		f.fs.Stats.ReadErrs.Add(1)
		return 0, fmt.Errorf("%w: read on %s@%d", ErrInjected, f.name, off)
	}
	n, err := f.inner.ReadAt(p, off)
	if d.corrupt && err == nil && n > 0 {
		// Silent corruption: the read reports success but one bit is wrong.
		// Only the buffer is altered — the file itself stays intact, like a
		// transient misread; a re-read may return clean bytes.
		bit := int(d.corruptFrac * float64(n*8))
		if bit >= n*8 {
			bit = n*8 - 1
		}
		p[bit/8] ^= 1 << (bit % 8)
		f.fs.Stats.Corruptions.Add(1)
	}
	return n, err
}

func (f *faultFile) Sync() error {
	d := f.fs.decide(f.name, opSync)
	if d.spike > 0 {
		f.fs.Stats.Spikes.Add(1)
		f.fs.sleep(d.spike)
	}
	if d.fail {
		f.fs.Stats.SyncErrs.Add(1)
		return fmt.Errorf("%w: fsync on %s", ErrInjected, f.name)
	}
	return f.inner.Sync()
}

func (f *faultFile) Size() (int64, error) { return f.inner.Size() }
func (f *faultFile) Close() error         { return f.inner.Close() }
