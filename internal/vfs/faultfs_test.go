package vfs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"
)

func TestFaultFSDisarmedIsTransparent(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, err := fs.Create("a/b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 0); err != nil || string(buf) != "hello" {
		t.Fatalf("ReadAt = %q, %v", buf, err)
	}
	if got := fs.Stats.Total(); got != 0 {
		t.Fatalf("disarmed FS injected %d faults", got)
	}
}

func TestFaultFSWriteAndSyncErrors(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("x/wal/1.wal")
	fs.Arm(FaultConfig{Seed: 1, WriteErrProb: 1})
	_, err := f.Write([]byte("data"))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write err = %v, want ErrInjected", err)
	}
	if !strings.Contains(err.Error(), "x/wal/1.wal") {
		t.Error("injected error does not name the file")
	}
	fs.Arm(FaultConfig{Seed: 1, SyncErrProb: 1})
	if err := f.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("sync err = %v, want ErrInjected", err)
	}
	fs.Disarm()
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatalf("write after disarm: %v", err)
	}
	if fs.Stats.WriteErrs.Load() != 1 || fs.Stats.SyncErrs.Load() != 1 {
		t.Errorf("stats = %d write, %d sync; want 1, 1",
			fs.Stats.WriteErrs.Load(), fs.Stats.SyncErrs.Load())
	}
}

func TestFaultFSPartialWriteIsTorn(t *testing.T) {
	inner := NewMemFS()
	fs := NewFaultFS(inner)
	f, _ := fs.Create("wal/seg")
	fs.Arm(FaultConfig{Seed: 7, PartialWriteProb: 1})
	n, err := f.Write(make([]byte, 100))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("partial write err = %v", err)
	}
	if n >= 100 {
		t.Fatalf("partial write reported %d of 100 bytes", n)
	}
	size, _ := f.Size()
	if size != int64(n) {
		t.Fatalf("inner file holds %d bytes, write reported %d", size, n)
	}
	if fs.Stats.PartialWrites.Load() != 1 {
		t.Error("partial write not counted")
	}
}

func TestFaultFSReadError(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("d/f")
	f.Write([]byte("abc"))
	fs.Arm(FaultConfig{Seed: 3, ReadErrProb: 1})
	if _, err := f.ReadAt(make([]byte, 3), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("read err = %v, want ErrInjected", err)
	}
}

func TestFaultFSPathFilter(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	fs.Arm(FaultConfig{Seed: 1, WriteErrProb: 1, PathSubstr: "/wal/"})
	sst, _ := fs.Create("tables/t/r1/000001.sst")
	if _, err := sst.Write([]byte("block")); err != nil {
		t.Fatalf("SSTable write faulted despite path filter: %v", err)
	}
	wal, _ := fs.Create("tables/t/r1/wal/000001.wal")
	if _, err := wal.Write([]byte("rec")); !errors.Is(err, ErrInjected) {
		t.Fatalf("WAL write not faulted: %v", err)
	}
}

func TestFaultFSLatencySpike(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	var slept time.Duration
	fs.sleep = func(d time.Duration) { slept += d }
	fs.Arm(FaultConfig{Seed: 1, SpikeProb: 1, SpikeLatency: 3 * time.Millisecond})
	f, _ := fs.Create("d/f")
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("spike must not fail the op: %v", err)
	}
	if slept != 3*time.Millisecond {
		t.Errorf("slept %v, want 3ms", slept)
	}
	if fs.Stats.Spikes.Load() != 1 {
		t.Error("spike not counted")
	}
}

func TestFaultFSDeterministicDecisions(t *testing.T) {
	run := func() []bool {
		fs := NewFaultFS(NewMemFS())
		f, _ := fs.Create("d/f")
		fs.Arm(FaultConfig{Seed: 42, WriteErrProb: 0.5})
		out := make([]bool, 200)
		for i := range out {
			_, err := f.Write([]byte("x"))
			out[i] = err != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs across runs with the same seed", i)
		}
	}
}

func TestFaultFSSilentReadCorruption(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("d/f")
	orig := []byte("the quick brown fox jumps over the lazy dog")
	f.Write(orig)
	fs.Arm(FaultConfig{Seed: 7, ReadCorruptProb: 1})
	buf := make([]byte, len(orig))
	n, err := f.ReadAt(buf, 0)
	if err != nil || n != len(orig) {
		t.Fatalf("corrupted read must still report success: n=%d err=%v", n, err)
	}
	if bytes.Equal(buf, orig) {
		t.Fatal("buffer unchanged: no bit was flipped")
	}
	// Exactly one bit differs.
	diffBits := 0
	for i := range buf {
		for b := buf[i] ^ orig[i]; b != 0; b &= b - 1 {
			diffBits++
		}
	}
	if diffBits != 1 {
		t.Fatalf("flipped %d bits, want 1", diffBits)
	}
	if got := fs.Stats.Corruptions.Load(); got != 1 {
		t.Fatalf("Corruptions = %d, want 1", got)
	}
	if fs.Stats.Total() != 1 {
		t.Fatalf("Total = %d, want 1", fs.Stats.Total())
	}

	// The file itself is intact: a clean re-read after disarm matches.
	fs.Disarm()
	clean := make([]byte, len(orig))
	if _, err := f.ReadAt(clean, 0); err != nil || !bytes.Equal(clean, orig) {
		t.Fatalf("post-disarm read: err=%v equal=%v", err, bytes.Equal(clean, orig))
	}
}

func TestFaultFSCorruptionRespectsPathFilter(t *testing.T) {
	fs := NewFaultFS(NewMemFS())
	f, _ := fs.Create("tables/t/r1/wal/000001.wal")
	orig := []byte("wal record bytes")
	f.Write(orig)
	fs.Arm(FaultConfig{Seed: 2, ReadCorruptProb: 1, PathSubstr: ".sst"})
	buf := make([]byte, len(orig))
	if _, err := f.ReadAt(buf, 0); err != nil || !bytes.Equal(buf, orig) {
		t.Fatalf("filtered path corrupted: err=%v equal=%v", err, bytes.Equal(buf, orig))
	}
	if fs.Stats.Corruptions.Load() != 0 {
		t.Fatal("corruption counted despite path filter")
	}
}
