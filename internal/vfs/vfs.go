// Package vfs abstracts the file system under the storage engine. The
// reproduction never touches a real disk: MemFS provides an in-memory file
// system, and LatencyFS wraps any FS to inject configurable I/O latency so
// that SSTable block reads pay a simulated disk-seek cost while memtable and
// block-cache accesses stay memory-speed. This reproduces the property the
// paper's design hinges on: in LSM "a read is many times slower than a
// write" (§1), because writes are appends and reads are random I/O.
//
// It stands in for HDFS in the paper's deployment (DESIGN.md, substitution
// S1): durable, append-visible storage for WAL segments and SSTables.
package vfs

import (
	"errors"
	"io"
)

// ErrNotExist is returned when opening or removing a file that does not exist.
var ErrNotExist = errors.New("vfs: file does not exist")

// ErrExist is returned when creating a file that already exists.
var ErrExist = errors.New("vfs: file already exists")

// ErrClosed is returned by operations on a closed file.
var ErrClosed = errors.New("vfs: file is closed")

// File is a handle to a stored file. Writes are sequential appends (the only
// write pattern LSM stores need); reads are positional.
type File interface {
	io.Writer
	io.ReaderAt
	io.Closer
	// Sync makes previously written data durable. On MemFS it is a no-op
	// (plus injected latency under LatencyFS); it exists so the WAL's
	// durability points are explicit in the code.
	Sync() error
	// Size returns the current length of the file in bytes.
	Size() (int64, error)
}

// FS is a flat-namespace file system.
type FS interface {
	// Create creates a new empty file open for appending. It fails with
	// ErrExist if the name is taken.
	Create(name string) (File, error)
	// Open opens an existing file for reading and appending.
	Open(name string) (File, error)
	// Remove deletes a file.
	Remove(name string) error
	// Rename atomically renames a file, replacing any existing target.
	Rename(oldName, newName string) error
	// List returns the names of all files with the given prefix, sorted.
	List(prefix string) ([]string, error)
	// Exists reports whether the named file exists.
	Exists(name string) (bool, error)
}
