package vfs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// MemFS is an in-memory FS. It is safe for concurrent use and supports many
// concurrent handles to the same file (readers see data as soon as it is
// written, matching the HDFS visibility the paper's WAL recovery relies on).
type MemFS struct {
	mu    sync.RWMutex
	files map[string]*memData
}

// NewMemFS returns an empty in-memory file system.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memData)}
}

type memData struct {
	mu   sync.RWMutex
	data []byte
}

// Create implements FS.
func (fs *MemFS) Create(name string) (File, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("create %q: %w", name, ErrExist)
	}
	d := &memData{}
	fs.files[name] = d
	return &memFile{d: d}, nil
}

// Open implements FS.
func (fs *MemFS) Open(name string) (File, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	d, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("open %q: %w", name, ErrNotExist)
	}
	return &memFile{d: d}, nil
}

// Remove implements FS.
func (fs *MemFS) Remove(name string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("remove %q: %w", name, ErrNotExist)
	}
	delete(fs.files, name)
	return nil
}

// Rename implements FS.
func (fs *MemFS) Rename(oldName, newName string) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	d, ok := fs.files[oldName]
	if !ok {
		return fmt.Errorf("rename %q: %w", oldName, ErrNotExist)
	}
	delete(fs.files, oldName)
	fs.files[newName] = d
	return nil
}

// List implements FS.
func (fs *MemFS) List(prefix string) ([]string, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	var out []string
	for name := range fs.files {
		if strings.HasPrefix(name, prefix) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Exists implements FS.
func (fs *MemFS) Exists(name string) (bool, error) {
	fs.mu.RLock()
	defer fs.mu.RUnlock()
	_, ok := fs.files[name]
	return ok, nil
}

type memFile struct {
	d      *memData
	closed bool
	mu     sync.Mutex // guards closed
}

func (f *memFile) checkOpen() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	return nil
}

// Write appends p to the file.
func (f *memFile) Write(p []byte) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	f.d.mu.Lock()
	f.d.data = append(f.d.data, p...)
	f.d.mu.Unlock()
	return len(p), nil
}

// ReadAt implements io.ReaderAt.
func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	if off < 0 {
		return 0, fmt.Errorf("vfs: negative offset %d", off)
	}
	if off >= int64(len(f.d.data)) {
		return 0, io.EOF
	}
	n := copy(p, f.d.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

// Sync is a no-op for MemFS.
func (f *memFile) Sync() error { return f.checkOpen() }

// Size returns the file length.
func (f *memFile) Size() (int64, error) {
	if err := f.checkOpen(); err != nil {
		return 0, err
	}
	f.d.mu.RLock()
	defer f.d.mu.RUnlock()
	return int64(len(f.d.data)), nil
}

// Close marks the handle closed. The underlying data stays in the FS.
func (f *memFile) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return ErrClosed
	}
	f.closed = true
	return nil
}
