package scale

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"diffindex"
	"diffindex/internal/workload"
)

// WorkloadConfig binds the open-loop engine to the YCSB-style item workload
// (internal/workload): which operations arrive and over which key domain.
type WorkloadConfig struct {
	// Records is the loaded item count (key-chooser domain).
	Records int64
	// Mix gives the probability of each op kind; unassigned mass goes to
	// OpUpdate, as in the closed-loop runner.
	Mix map[workload.OpKind]float64
	// RangeSelectivity sets the key-space fraction each range query covers.
	RangeSelectivity float64
	// Distribution is the key chooser ("uniform", "zipfian", "latest").
	Distribution string
	// Seed seeds the op/key choosers (independent of Config.Seed, which
	// drives the arrival schedule).
	Seed int64
}

// RunWorkload drives the item workload open-loop against a DB: arrivals per
// cfg, operations per wcfg. Unlike workload.Run's closed loop (each thread
// issues the next op only after the previous completes), arrival times here
// never depend on completions, so the result's latency histogram is a true
// latency-under-load measurement at the offered rate.
func RunWorkload(db *diffindex.DB, cfg Config, wcfg WorkloadConfig) Result {
	if wcfg.Records <= 0 {
		wcfg.Records = 1
	}
	// One client per execution slot: an operation picks up whichever client
	// is free. Clients are just routing handles; pooling them bounds the
	// simnet node count at MaxInFlight.
	cfg = cfg.withDefaults()
	pool := make(chan *diffindex.Client, cfg.MaxInFlight)
	for i := 0; i < cfg.MaxInFlight; i++ {
		pool <- db.NewClient(fmt.Sprintf("openloop-%d", i))
	}

	// The choosers are not concurrency-safe; operations draw their kind and
	// key under one lock. Draw order still follows admission order, which
	// the dispatcher serializes.
	var (
		chooseMu  sync.Mutex
		rng       = rand.New(rand.NewSource(wcfg.Seed))
		chooser   = workload.NewGenerator(wcfg.Distribution, wcfg.Records, wcfg.Seed+15485863)
		updateGen atomic.Int64
	)

	op := func() error {
		chooseMu.Lock()
		kind := workload.PickOp(rng, wcfg.Mix)
		item := chooser.Next()
		chooseMu.Unlock()

		cl := <-pool
		defer func() { pool <- cl }()
		var err error
		switch kind {
		case workload.OpUpdate:
			gen := updateGen.Add(1)
			_, err = cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
				workload.TitleColumn: workload.UpdatedTitleValue(item, gen),
			})
		case workload.OpIndexRead:
			_, err = cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.TitleValue(item))
		case workload.OpRangeRead:
			span := int64(wcfg.RangeSelectivity * float64(wcfg.Records))
			if span < 1 {
				span = 1
			}
			lo := item
			if lo+span > wcfg.Records {
				lo = wcfg.Records - span
			}
			_, err = cl.RangeByIndex(workload.TableName, []string{workload.PriceColumn},
				workload.PriceValue(lo), workload.PriceValue(lo+span-1), 0)
		case workload.OpRowRead:
			_, err = cl.GetRow(workload.TableName, workload.ItemKey(item))
		}
		return err
	}
	return Run(cfg, op)
}
