package scale

import (
	"errors"
	"testing"
	"time"
)

// The engine's determinism contract: with a VirtualClock (Sleep advances
// time instantly — zero wall-clock sleeps anywhere in these tests) and an
// executor whose completions the test controls, admission and shedding are
// pure functions of the seeded arrival schedule.

// TestOpenLoopFixedPacing: a fixed-interval schedule at 10 ops/s over 1s
// offers exactly 10 arrivals, all admitted, and virtual time advances to
// exactly the configured duration.
func TestOpenLoopFixedPacing(t *testing.T) {
	clock := NewVirtualClock()
	// MaxInFlight ≥ offered: no arrival can ever be shed, regardless of how
	// goroutine scheduling interleaves completions with the free-running
	// dispatcher.
	res := Run(Config{
		Rate:        10,
		Duration:    time.Second,
		Arrival:     Fixed,
		MaxInFlight: 16,
		Clock:       clock,
	}, func() error { return nil })

	if res.Offered != 10 {
		t.Fatalf("offered = %d, want 10 (fixed 10/s over 1s)", res.Offered)
	}
	if res.Started != 10 || res.Shed != 0 {
		t.Fatalf("started = %d shed = %d, want 10/0", res.Started, res.Shed)
	}
	if res.Completed != 10 || res.Errors != 0 {
		t.Fatalf("completed = %d errors = %d, want 10/0", res.Completed, res.Errors)
	}
	if res.Elapsed != time.Second {
		t.Fatalf("elapsed = %v, want exactly 1s of virtual time", res.Elapsed)
	}
	if got := res.Latency.Count(); got != 10 {
		t.Fatalf("latency samples = %d, want 10", got)
	}
}

// TestOpenLoopPoissonDeterminism: the same seed yields the identical
// schedule (offered count) on every run; a different seed yields a
// different draw sequence.
func TestOpenLoopPoissonDeterminism(t *testing.T) {
	run := func(seed int64) Result {
		// MaxInFlight ≥ any plausible offered count: nothing is shed, so
		// the whole result is schedule-determined.
		return Run(Config{
			Rate:        500,
			Duration:    time.Second,
			Arrival:     Poisson,
			Seed:        seed,
			MaxInFlight: 4096,
			Clock:       NewVirtualClock(),
		}, func() error { return nil })
	}
	a, b := run(42), run(42)
	if a.Offered == 0 {
		t.Fatal("poisson schedule offered no arrivals")
	}
	if a.Offered != b.Offered || a.Started != b.Started || a.Shed != b.Shed {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	if a.Shed != 0 || a.Started != a.Offered {
		t.Fatalf("unexpected shedding with unbounded slots: %+v", a)
	}
	// ~500 expected; 5σ ≈ 112. A violation means the process is not
	// Poisson at the configured rate.
	if a.Offered < 350 || a.Offered > 650 {
		t.Fatalf("offered = %d, implausible for Poisson(500)", a.Offered)
	}
	if c := run(43); c.Offered == a.Offered {
		t.Logf("seeds 42/43 coincidentally offered equal counts (%d) — suspicious but possible", c.Offered)
	}
}

// TestOpenLoopShedAtBound: operations that never complete (gated executor)
// make outstanding monotone, so admission is exact: MaxInFlight=2 plus
// QueueBound=1 admits exactly 3 of 10 arrivals and sheds the other 7.
func TestOpenLoopShedAtBound(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 3)
	done := make(chan Result, 1)
	go func() {
		done <- Run(Config{
			Rate:        10,
			Duration:    time.Second,
			Arrival:     Fixed,
			MaxInFlight: 2,
			QueueBound:  1,
			Clock:       NewVirtualClock(),
		}, func() error {
			started <- struct{}{}
			<-gate
			return nil
		})
	}()
	// Exactly MaxInFlight operations reach execution; the QueueBound-th
	// admitted arrival waits for a slot and must not have started.
	<-started
	<-started
	select {
	case <-started:
		t.Fatal("third operation executed despite MaxInFlight=2")
	default:
	}
	close(gate) // release; the queued arrival now runs too
	res := <-done

	if res.Offered != 10 {
		t.Fatalf("offered = %d, want 10", res.Offered)
	}
	if res.Started != 3 {
		t.Fatalf("started = %d, want 3 (2 in flight + 1 queued)", res.Started)
	}
	if res.Shed != 7 {
		t.Fatalf("shed = %d, want 7", res.Shed)
	}
	if res.Completed != 3 {
		t.Fatalf("completed = %d, want 3", res.Completed)
	}
	if res.ShedRate() != 0.7 {
		t.Fatalf("shed rate = %v, want 0.7", res.ShedRate())
	}
}

// TestOpenLoopZeroQueueBound: with QueueBound=0 every arrival beyond
// MaxInFlight is shed immediately.
func TestOpenLoopZeroQueueBound(t *testing.T) {
	gate := make(chan struct{})
	started := make(chan struct{}, 1)
	done := make(chan Result, 1)
	go func() {
		done <- Run(Config{
			Rate:        5,
			Duration:    time.Second,
			Arrival:     Fixed,
			MaxInFlight: 1,
			Clock:       NewVirtualClock(),
		}, func() error {
			started <- struct{}{}
			<-gate
			return nil
		})
	}()
	<-started
	close(gate)
	res := <-done
	if res.Offered != 5 || res.Started != 1 || res.Shed != 4 {
		t.Fatalf("offered/started/shed = %d/%d/%d, want 5/1/4", res.Offered, res.Started, res.Shed)
	}
}

// TestOpenLoopErrors: failing operations count as Errors, not Completed,
// and still free their slot.
func TestOpenLoopErrors(t *testing.T) {
	boom := errors.New("boom")
	calls := 0
	res := Run(Config{
		Rate:        10,
		Duration:    time.Second,
		Arrival:     Fixed,
		MaxInFlight: 1,
		Clock:       NewVirtualClock(),
	}, func() error {
		calls++
		if calls%2 == 0 {
			return boom
		}
		return nil
	})
	// MaxInFlight=1 with instant ops and a free-running clock: sheds are
	// possible only if a slot appears busy, which instant completion before
	// the next arrival prevents — the dispatcher launches the goroutine but
	// the NEXT admission check happens after the virtual sleep, during
	// which the op may not have run yet. So only assert conservation.
	if res.Offered != 10 {
		t.Fatalf("offered = %d, want 10", res.Offered)
	}
	if res.Started != res.Completed+res.Errors {
		t.Fatalf("started (%d) != completed (%d) + errors (%d)", res.Started, res.Completed, res.Errors)
	}
	if res.Started+res.Shed != res.Offered {
		t.Fatalf("started (%d) + shed (%d) != offered (%d)", res.Started, res.Shed, res.Offered)
	}
	if res.Errors == 0 && res.Started > 1 {
		t.Fatalf("no errors recorded despite failing op (started=%d)", res.Started)
	}
}

// TestVirtualClockSleep: Sleep advances Now by exactly d and never blocks.
func TestVirtualClockSleep(t *testing.T) {
	c := NewVirtualClock()
	t0 := c.Now()
	c.Sleep(3 * time.Second)
	c.Sleep(-time.Second) // negative sleeps are no-ops
	if got := c.Now().Sub(t0); got != 3*time.Second {
		t.Fatalf("virtual time advanced %v, want 3s", got)
	}
}
