// Package scale is the open-loop load harness: operations arrive on an
// independent arrival process (fixed or Poisson interarrivals at a target
// rate) regardless of how fast the system completes them, so measured
// latency includes the queueing delay a saturated system builds up — the
// latency-under-load curve closed-loop harnesses (a fixed worker pool, as in
// internal/workload) systematically understate, because their arrival rate
// collapses to the service rate the moment the system slows down
// (coordinated omission).
//
// The engine is deterministic by construction: time comes from an injected
// Clock (tests use VirtualClock, whose Sleep advances time without waiting),
// arrival schedules come from a seeded PRNG, and admission decisions are
// made only on the dispatcher goroutine — so given a seed and a gated
// executor, exactly the same operations are admitted and shed on every run.
package scale

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"diffindex/internal/metrics"
)

// Clock abstracts time for the engine. The wall implementation paces real
// benchmark runs; VirtualClock makes unit tests instant and deterministic.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// WallClock is the real-time clock.
type WallClock struct{}

func (WallClock) Now() time.Time        { return time.Now() }
func (WallClock) Sleep(d time.Duration) { time.Sleep(d) }

// VirtualClock is a deterministic clock: Sleep advances it instantly, so an
// engine driven by it free-runs through its whole schedule without waiting.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock starts a virtual clock at an arbitrary fixed epoch.
func NewVirtualClock() *VirtualClock {
	return &VirtualClock{now: time.Unix(0, 0)}
}

func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *VirtualClock) Sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// Arrival selects the interarrival process.
type Arrival int

const (
	// Poisson draws exponential interarrivals — memoryless open-loop
	// arrivals, the standard model for independent clients.
	Poisson Arrival = iota
	// Fixed spaces arrivals exactly 1/Rate apart.
	Fixed
)

// Config tunes one open-loop run.
type Config struct {
	// Rate is the offered arrival rate in operations per second (required).
	Rate float64
	// Duration is how long arrivals are generated (required).
	Duration time.Duration
	// Arrival selects the interarrival process (default Poisson).
	Arrival Arrival
	// MaxInFlight bounds concurrently executing operations (default 64).
	MaxInFlight int
	// QueueBound is how many admitted arrivals may WAIT for an execution
	// slot beyond MaxInFlight. An arrival that finds MaxInFlight+QueueBound
	// operations outstanding is shed: counted and dropped, never executed —
	// the load an overloaded open-loop system must reject rather than
	// buffer without bound. 0 sheds as soon as every slot is busy.
	QueueBound int
	// Seed seeds the arrival-schedule PRNG (Poisson draws).
	Seed int64
	// Clock injects time; nil means WallClock.
	Clock Clock
}

func (c Config) withDefaults() Config {
	if c.Rate <= 0 {
		c.Rate = 1000
	}
	if c.Duration <= 0 {
		c.Duration = time.Second
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 64
	}
	if c.QueueBound < 0 {
		c.QueueBound = 0
	}
	if c.Clock == nil {
		c.Clock = WallClock{}
	}
	return c
}

// Result summarizes one open-loop run.
type Result struct {
	// Offered is how many arrivals the schedule generated (≈ Rate×Duration).
	Offered int64
	// Started is how many arrivals were admitted and executed.
	Started int64
	// Completed counts executions that returned nil.
	Completed int64
	// Errors counts executions that returned an error.
	Errors int64
	// Shed counts arrivals rejected because MaxInFlight+QueueBound
	// operations were already outstanding.
	Shed int64
	// Elapsed is the wall (or virtual) time from first arrival to last
	// completion.
	Elapsed time.Duration
	// Latency is the arrival-to-completion distribution of executed
	// operations — it includes time spent waiting for an execution slot,
	// which is the point of open-loop measurement.
	Latency *metrics.Histogram
}

// AchievedRate is completed operations per second of elapsed time.
func (r Result) AchievedRate() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Completed) / r.Elapsed.Seconds()
}

// ShedRate is the fraction of offered arrivals that were shed.
func (r Result) ShedRate() float64 {
	if r.Offered == 0 {
		return 0
	}
	return float64(r.Shed) / float64(r.Offered)
}

// Run generates arrivals per cfg and executes op for each admitted one.
// It returns once every admitted operation has completed.
//
// Admission is decided ONLY on the dispatcher goroutine, against an atomic
// count of outstanding operations: the dispatcher increments it at admission
// and each operation decrements it at completion. Combined with an injected
// VirtualClock (whose Sleep never blocks) and an executor whose completions
// the test controls, the admit/shed sequence is a pure function of the
// schedule — the deterministic test spine.
func Run(cfg Config, op func() error) Result {
	cfg = cfg.withDefaults()
	res := Result{Latency: metrics.NewHistogram()}

	var (
		outstanding atomic.Int64
		completed   atomic.Int64
		errors      atomic.Int64
		wg          sync.WaitGroup
	)
	// sem is the execution gate: admitted arrivals beyond MaxInFlight wait
	// here (up to QueueBound of them), and that wait is part of measured
	// latency.
	sem := make(chan struct{}, cfg.MaxInFlight)
	admitLimit := int64(cfg.MaxInFlight + cfg.QueueBound)

	rng := rand.New(rand.NewSource(cfg.Seed))
	interarrival := func() time.Duration {
		switch cfg.Arrival {
		case Fixed:
			return time.Duration(float64(time.Second) / cfg.Rate)
		default:
			return time.Duration(rng.ExpFloat64() * float64(time.Second) / cfg.Rate)
		}
	}

	start := cfg.Clock.Now()
	next := interarrival() // first arrival is one interarrival after start
	for next <= cfg.Duration {
		// Pace to the arrival instant (independent of service progress:
		// this sleep never waits for operations — open loop).
		cfg.Clock.Sleep(start.Add(next).Sub(cfg.Clock.Now()))
		res.Offered++
		if outstanding.Load() >= admitLimit {
			res.Shed++
			next += interarrival()
			continue
		}
		outstanding.Add(1)
		res.Started++
		arrival := start.Add(next)
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			err := op()
			<-sem
			res.Latency.RecordDuration(cfg.Clock.Now().Sub(arrival))
			if err != nil {
				errors.Add(1)
			} else {
				completed.Add(1)
			}
			outstanding.Add(-1)
		}()
		next += interarrival()
	}
	wg.Wait()
	res.Completed = completed.Load()
	res.Errors = errors.Load()
	res.Elapsed = cfg.Clock.Now().Sub(start)
	if res.Elapsed < cfg.Duration {
		res.Elapsed = cfg.Duration
	}
	return res
}
