// Package metrics provides the measurement primitives used by the experiment
// harness: lock-free log-bucketed latency histograms (HdrHistogram-style),
// atomic counters, and percentile reports. The paper reports mean latency vs
// throughput curves (Figs. 7, 8, 10), selectivity sweeps (Fig. 9), and a
// staleness distribution (Fig. 11); all of them are built from Histogram.
package metrics

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
	"sync/atomic"
	"time"
)

// Histogram records int64 samples (typically nanoseconds) in logarithmic
// buckets: 64 major buckets (one per power of two) each split into 16 linear
// sub-buckets, giving ≤6.25% relative error per sample. Recording is
// lock-free and safe for concurrent use.
type Histogram struct {
	counts [64 * subBuckets]atomic.Int64
	total  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
	min    atomic.Int64
}

const subBuckets = 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	h := &Histogram{}
	h.min.Store(math.MaxInt64)
	return h
}

func bucketIndex(v int64) int {
	if v < 0 {
		v = 0
	}
	if v < subBuckets {
		return int(v)
	}
	// Major bucket: position of the highest set bit; sub-bucket: the next
	// log2(subBuckets) bits below it.
	high := 63 - bits.LeadingZeros64(uint64(v))
	shift := high - 4 // 4 = log2(subBuckets)
	sub := int(v>>uint(shift)) & (subBuckets - 1)
	return (high-3)*subBuckets + sub
}

// bucketUpper returns a representative (upper-bound) value for bucket i.
func bucketUpper(i int) int64 {
	if i < subBuckets {
		return int64(i)
	}
	major := i/subBuckets + 3
	sub := i % subBuckets
	base := int64(1) << uint(major)
	return base + int64(sub+1)<<uint(major-4) - 1
}

// Record adds one sample.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketIndex(v)].Add(1)
	h.total.Add(1)
	h.sum.Add(v)
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
}

// RecordDuration adds one sample measured as a time.Duration (in ns).
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(int64(d)) }

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.total.Load() }

// Mean returns the arithmetic mean of the samples, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Max returns the largest recorded sample, or 0 when empty.
func (h *Histogram) Max() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	return h.max.Load()
}

// Min returns the smallest recorded sample, or 0 when empty. Record bumps
// total before the min CAS completes, so a concurrent reader can observe
// total > 0 while min is still the empty sentinel; that window reads as 0
// rather than leaking math.MaxInt64.
func (h *Histogram) Min() int64 {
	if h.total.Load() == 0 {
		return 0
	}
	m := h.min.Load()
	if m == math.MaxInt64 {
		return 0
	}
	return m
}

// Quantile returns an upper-bound estimate of the q-quantile (0 ≤ q ≤ 1).
func (h *Histogram) Quantile(q float64) int64 {
	n := h.total.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen >= target {
			u := bucketUpper(i)
			if m := h.max.Load(); u > m {
				return m
			}
			return u
		}
	}
	return h.max.Load()
}

// Merge adds other's samples into h. Min/max merge exactly; bucket counts
// merge exactly; the result is equivalent to recording both sample streams.
func (h *Histogram) Merge(other *Histogram) {
	if other == nil {
		return
	}
	for i := range h.counts {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.total.Add(other.total.Load())
	h.sum.Add(other.sum.Load())
	if other.total.Load() > 0 {
		om := other.max.Load()
		for {
			cur := h.max.Load()
			if om <= cur || h.max.CompareAndSwap(cur, om) {
				break
			}
		}
		omin := other.min.Load()
		for {
			cur := h.min.Load()
			if omin >= cur || h.min.CompareAndSwap(cur, omin) {
				break
			}
		}
	}
}

// Snapshot captures the summary statistics of a histogram at one instant.
type Snapshot struct {
	Count         int64
	Mean          float64
	Min, Max      int64
	P50, P95, P99 int64
	P999          int64
}

// Snapshot returns the current summary statistics, read consistently enough
// for a concurrent dump.
//
// Weak-consistency contract: recording never blocks and Snapshot never
// blocks recorders, so a snapshot taken concurrently with Record is not a
// consistent cut — it may miss (or partially include) the handful of
// records in flight. What Snapshot does guarantee:
//
//   - Count and every quantile derive from ONE pass over the bucket array,
//     so the quantiles are mutually monotone (P50 ≤ P95 ≤ P99 ≤ P999) and
//     consistent with Count — unlike calling Count and Quantile separately,
//     which can disagree about how many samples exist.
//   - Min is never the empty sentinel when Count > 0, and Min ≤ Max
//     (Record publishes max before min, and both move monotonically).
//   - Quantiles are clamped to Max; Mean is clamped to [Min, Max] when it
//     drifts outside due to a sum/bucket race.
//
// Fields may still lag or lead each other by in-flight records; callers
// needing exact totals must quiesce recorders first.
func (h *Histogram) Snapshot() Snapshot {
	var counts [64 * subBuckets]int64
	var total int64
	for i := range h.counts {
		c := h.counts[i].Load()
		counts[i] = c
		total += c
	}
	if total == 0 {
		return Snapshot{}
	}
	sum := h.sum.Load()
	min := h.min.Load()
	max := h.max.Load()
	if min == math.MaxInt64 {
		min = 0
	}
	quantile := func(q float64) int64 {
		target := int64(math.Ceil(q * float64(total)))
		if target < 1 {
			target = 1
		}
		var seen int64
		for i, c := range counts {
			seen += c
			if seen >= target {
				u := bucketUpper(i)
				if u > max {
					return max
				}
				return u
			}
		}
		return max
	}
	mean := float64(sum) / float64(total)
	if mean < float64(min) {
		mean = float64(min)
	}
	if mean > float64(max) {
		mean = float64(max)
	}
	return Snapshot{
		Count: total,
		Mean:  mean,
		Min:   min,
		Max:   max,
		P50:   quantile(0.50),
		P95:   quantile(0.95),
		P99:   quantile(0.99),
		P999:  quantile(0.999),
	}
}

// Reset zeroes the histogram for a new measurement phase. Like Snapshot it
// is only weakly consistent against concurrent recorders: samples recorded
// while Reset runs may be partially dropped. Quiesce recorders for an exact
// phase boundary.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.total.Store(0)
	h.sum.Store(0)
	h.max.Store(0)
	h.min.Store(math.MaxInt64)
}

// String renders the snapshot with duration formatting, assuming samples are
// nanoseconds.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v max=%v",
		s.Count, time.Duration(int64(s.Mean)), time.Duration(s.P50),
		time.Duration(s.P95), time.Duration(s.P99), time.Duration(s.Max))
}

// Counter is a cumulative atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc increments the counter by 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Reset sets the counter to zero and returns the previous value.
func (c *Counter) Reset() int64 { return c.v.Swap(0) }

// Meter measures throughput: operations counted over a wall-clock window.
type Meter struct {
	ops   Counter
	start time.Time
}

// NewMeter returns a meter whose window starts now.
func NewMeter() *Meter { return &Meter{start: time.Now()} }

// Mark records n completed operations.
func (m *Meter) Mark(n int64) { m.ops.Add(n) }

// Rate returns operations per second since the meter was created.
func (m *Meter) Rate() float64 {
	elapsed := time.Since(m.start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.ops.Load()) / elapsed
}

// Ops returns the total operations marked.
func (m *Meter) Ops() int64 { return m.ops.Load() }

// FormatTable renders rows as a fixed-width text table: the printer used by
// the experiment harness to emit the paper's tables and figure series.
func FormatTable(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}
