package metrics

import (
	"bytes"
	"encoding/json"
	"flag"
	"math"
	"os"
	"sync"
	"testing"
	"time"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite golden files")

// TestMetricsRegistryLookup verifies lookup-or-create semantics: same
// name+labels share one instrument regardless of label order; different
// labels do not.
func TestMetricsRegistryLookup(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c", L("table", "t1"), L("op", "put"))
	b := r.Counter("c", L("op", "put"), L("table", "t1"))
	if a != b {
		t.Fatal("label order changed the counter identity")
	}
	c := r.Counter("c", L("op", "put"), L("table", "t2"))
	if a == c {
		t.Fatal("different labels resolved to the same counter")
	}
	a.Add(3)
	if v, ok := r.Value("c", L("table", "t1"), L("op", "put")); !ok || v != 3 {
		t.Fatalf("Value = %d, %v; want 3, true", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Fatal("Value found a metric that was never registered")
	}

	h1 := r.Histogram("h", L("stage", "wal"))
	h2 := r.Histogram("h", L("stage", "wal"))
	if h1 != h2 {
		t.Fatal("histogram lookup did not dedupe")
	}
}

// TestMetricsRegistryGaugeFunc verifies computed gauges are evaluated at
// read time and appear in snapshots alongside stored gauges.
func TestMetricsRegistryGaugeFunc(t *testing.T) {
	r := NewRegistry()
	depth := int64(0)
	r.RegisterGaugeFunc("depth", func() int64 { return depth })
	if v, ok := r.Value("depth"); !ok || v != 0 {
		t.Fatalf("Value = %d, %v; want 0, true", v, ok)
	}
	depth = 42
	if v, _ := r.Value("depth"); v != 42 {
		t.Fatalf("gauge func not re-evaluated: got %d", v)
	}
	r.Gauge("stored").Set(7)
	snap := r.Snapshot()
	if len(snap.Gauges) != 2 {
		t.Fatalf("snapshot gauges = %d, want 2 (stored + computed)", len(snap.Gauges))
	}
}

// TestMetricsSnapshotStableJSON is the golden-file guard: a registry built
// from fixed, deterministic values must marshal to byte-identical JSON run
// after run (stable ordering, stable field set). Refresh with
// `go test ./internal/metrics -run Golden -update-golden`.
func TestMetricsSnapshotStableJSONGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("diffindex_io_ops_total", L("op", "base-put")).Add(10)
	r.Counter("diffindex_io_ops_total", L("op", "index-put")).Add(4)
	r.Counter("diffindex_wal_appends_total", L("table", "items")).Add(12)
	r.Gauge("diffindex_auq_depth").Set(3)
	r.RegisterGaugeFunc("diffindex_block_cache_hits", func() int64 { return 99 }, L("server", "rs1"))
	h := r.Histogram("diffindex_op_latency_ns", L("op", "put"), L("table", "items"))
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	st := r.Histogram("diffindex_stage_latency_ns", L("stage", "wal"), L("table", "items"))
	st.Record(2048)
	st.Record(4096)
	// The integrity surface: scrub and anti-entropy counters, exactly as the
	// scrubber and VerifyIndexes emit them.
	r.Counter("diffindex_scrub_blocks_total", L("table", "items")).Add(128)
	r.Counter("diffindex_scrub_bytes_total", L("table", "items")).Add(524288)
	r.Counter("diffindex_scrub_corruptions_total", L("table", "items")).Add(1)
	r.Counter("diffindex_scrub_cycles_total", L("table", "items")).Add(2)
	r.Counter("diffindex_antientropy_sweeps_total", L("table", "items")).Add(3)
	r.Counter("diffindex_antientropy_buckets_total", L("result", "clean")).Add(190)
	r.Counter("diffindex_antientropy_buckets_total", L("result", "divergent")).Add(2)
	r.Counter("diffindex_antientropy_violations_total", L("kind", "missing")).Add(1)
	r.Counter("diffindex_antientropy_violations_total", L("kind", "stale")).Add(1)
	r.Counter("diffindex_antientropy_repairs_total", L("kind", "missing")).Add(1)
	r.Counter("diffindex_antientropy_repairs_total", L("kind", "stale")).Add(1)
	// The learned-block-index surface: model-served vs fallback lookups and
	// segments trained, exactly as the lsm store emits them (DESIGN.md §12).
	r.Counter("diffindex_sstable_model_hits_total", L("table", "items")).Add(950)
	r.Counter("diffindex_sstable_model_fallbacks_total", L("table", "items")).Add(50)
	r.Counter("diffindex_sstable_model_segments_total", L("table", "items")).Add(7)

	got, err := r.Snapshot().MarshalStableJSON()
	if err != nil {
		t.Fatal(err)
	}
	got = append(got, '\n')

	const golden = "testdata/registry_snapshot.golden.json"
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden: %v (run with -update-golden to create)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("snapshot JSON drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}

	// The encoding must also round-trip as JSON.
	var decoded RegistrySnapshot
	if err := json.Unmarshal(got, &decoded); err != nil {
		t.Fatalf("snapshot JSON does not round-trip: %v", err)
	}
	if len(decoded.Histograms) != 2 {
		t.Fatalf("round-trip lost histograms: %d", len(decoded.Histograms))
	}
}

// TestMetricsHistogramSnapshotRace exercises the weak-consistency contract
// of Histogram.Snapshot under concurrent recording (run under -race): the
// invariants that must hold in every snapshot, no matter the interleaving.
func TestMetricsHistogramSnapshotRace(t *testing.T) {
	h := NewHistogram()
	const (
		writers = 4
		perW    = 20000
		maxV    = int64(1_000_000)
	)
	var writersWG, readerWG sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		writersWG.Add(1)
		go func(seed int64) {
			defer writersWG.Done()
			v := seed
			for i := 0; i < perW; i++ {
				v = (v*1103515245 + 12345) % maxV
				h.Record(v)
			}
		}(int64(w + 1))
	}
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			if s.Count == 0 {
				continue
			}
			if s.Min == math.MaxInt64 {
				t.Error("snapshot leaked the empty-min sentinel")
				return
			}
			if s.Min > s.Max {
				t.Errorf("Min %d > Max %d", s.Min, s.Max)
				return
			}
			if s.P50 > s.P95 || s.P95 > s.P99 || s.P99 > s.P999 {
				t.Errorf("quantiles not monotone: %d %d %d %d", s.P50, s.P95, s.P99, s.P999)
				return
			}
			if s.P999 > s.Max {
				t.Errorf("P999 %d > Max %d", s.P999, s.Max)
				return
			}
			if s.Mean < float64(s.Min) || s.Mean > float64(s.Max) {
				t.Errorf("Mean %f outside [%d, %d]", s.Mean, s.Min, s.Max)
				return
			}
		}
	}()
	writersWG.Wait()
	close(stop)
	readerWG.Wait()

	final := h.Snapshot()
	if want := int64(writers * perW); final.Count != want {
		t.Fatalf("final Count = %d, want %d", final.Count, want)
	}
}

// TestMetricsHistogramReset verifies Reset returns the histogram to its
// empty state.
func TestMetricsHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	h.Record(200)
	h.Reset()
	s := h.Snapshot()
	if s.Count != 0 || s.Max != 0 || s.Min != 0 {
		t.Fatalf("after Reset: %+v", s)
	}
	h.Record(50)
	s = h.Snapshot()
	if s.Count != 1 || s.Min != 50 {
		t.Fatalf("record after Reset: %+v", s)
	}
}

// TestMetricsSlowOpLog verifies top-K retention and ordering.
func TestMetricsSlowOpLog(t *testing.T) {
	l := NewSlowOpLog(3)
	for i := 1; i <= 10; i++ {
		l.Offer(SlowOp{Op: "put", Total: time.Duration(i) * time.Millisecond})
	}
	ops := l.Snapshot()
	if len(ops) != 3 {
		t.Fatalf("retained %d ops, want 3", len(ops))
	}
	want := []time.Duration{10 * time.Millisecond, 9 * time.Millisecond, 8 * time.Millisecond}
	for i, w := range want {
		if ops[i].Total != w {
			t.Fatalf("ops[%d].Total = %v, want %v", i, ops[i].Total, w)
		}
	}
	// A fast op must be rejected by the atomic threshold without changing
	// the log.
	l.Offer(SlowOp{Op: "put", Total: time.Millisecond})
	if got := l.Snapshot(); got[2].Total != 8*time.Millisecond {
		t.Fatalf("fast op displaced a slow one: %v", got)
	}
}

// TestMetricsTracerDisabled verifies the disabled tracer is a full no-op.
func TestMetricsTracerDisabled(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8, true)
	tc := tr.Start("put", "items")
	if tc != nil {
		t.Fatal("disabled tracer returned a live trace")
	}
	tc.AddStage(StageWAL, time.Millisecond) // must not panic on nil
	end := tc.StartStage(StageMemtable)
	end()
	tr.Finish(tc)
	if len(tr.SlowOps()) != 0 {
		t.Fatal("disabled tracer recorded slow ops")
	}
	if len(reg.Snapshot().Histograms) != 0 {
		t.Fatal("disabled tracer recorded histograms")
	}
}

// TestMetricsTracerFinish verifies Finish records the op histogram and the
// slow-op log with the trace's stages.
func TestMetricsTracerFinish(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(reg, 8, false)
	tc := tr.Start("put", "items")
	tc.AddStage(StageWAL, 2*time.Millisecond)
	tc.AddStage(StageMemtable, time.Millisecond)
	tr.Finish(tc)

	h := reg.Histogram("diffindex_op_latency_ns", L("op", "put"), L("table", "items"))
	if h.Count() != 1 {
		t.Fatalf("op histogram count = %d, want 1", h.Count())
	}
	ops := tr.SlowOps()
	if len(ops) != 1 || len(ops[0].Stages) != 2 {
		t.Fatalf("slow ops = %+v", ops)
	}
	if ops[0].Stages[0].Name != StageWAL {
		t.Fatalf("stage order not preserved: %+v", ops[0].Stages)
	}
}
