package metrics

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Error("empty histogram must report zeros")
	}
	for _, v := range []int64{10, 20, 30, 40, 50} {
		h.Record(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d", h.Count())
	}
	if h.Mean() != 30 {
		t.Errorf("Mean = %f", h.Mean())
	}
	if h.Min() != 10 || h.Max() != 50 {
		t.Errorf("Min/Max = %d/%d", h.Min(), h.Max())
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Record(-5)
	if h.Min() != 0 || h.Count() != 1 {
		t.Error("negative samples must clamp to 0")
	}
}

// TestQuantileAccuracy checks the ≤6.25% relative error bound of the
// log-bucketed layout against exact quantiles of random data.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	h := NewHistogram()
	samples := make([]int64, 20000)
	for i := range samples {
		v := int64(rng.ExpFloat64() * 1e6)
		samples[i] = v
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		exact := samples[int(q*float64(len(samples)-1))]
		got := h.Quantile(q)
		if got < exact {
			t.Errorf("q=%.2f: estimate %d below exact %d (must be upper bound)", q, got, exact)
		}
		if exact > 100 && float64(got) > float64(exact)*1.15 {
			t.Errorf("q=%.2f: estimate %d too far above exact %d", q, got, exact)
		}
	}
}

func TestQuantileEdges(t *testing.T) {
	h := NewHistogram()
	h.Record(100)
	if h.Quantile(-1) != h.Quantile(0) {
		t.Error("q<0 must clamp")
	}
	if h.Quantile(2) != h.Quantile(1) {
		t.Error("q>1 must clamp")
	}
	if h.Quantile(1) > h.Max() {
		t.Error("q=1 must not exceed max")
	}
}

func TestBucketMonotonic(t *testing.T) {
	f := func(a, b int64) bool {
		if a < 0 {
			a = -a
		}
		if b < 0 {
			b = -b
		}
		if a > b {
			a, b = b, a
		}
		return bucketIndex(a) <= bucketIndex(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBucketUpperBounds(t *testing.T) {
	for _, v := range []int64{0, 1, 15, 16, 17, 100, 1023, 1024, 1 << 20, math.MaxInt64 / 2} {
		i := bucketIndex(v)
		if u := bucketUpper(i); u < v {
			t.Errorf("bucketUpper(%d)=%d below sample %d", i, u, v)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(), NewHistogram()
	for i := int64(1); i <= 100; i++ {
		a.Record(i)
	}
	for i := int64(101); i <= 200; i++ {
		b.Record(i)
	}
	a.Merge(b)
	if a.Count() != 200 {
		t.Errorf("merged count = %d", a.Count())
	}
	if a.Min() != 1 || a.Max() != 200 {
		t.Errorf("merged min/max = %d/%d", a.Min(), a.Max())
	}
	if got := a.Mean(); math.Abs(got-100.5) > 0.01 {
		t.Errorf("merged mean = %f", got)
	}
	a.Merge(nil) // must not panic
	empty := NewHistogram()
	empty.Merge(NewHistogram())
	if empty.Count() != 0 {
		t.Error("merging empties must stay empty")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	const workers, per = 8, 5000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(int64(rng.Intn(1_000_000)))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Errorf("count = %d, want %d", h.Count(), workers*per)
	}
}

func TestSnapshotString(t *testing.T) {
	h := NewHistogram()
	h.RecordDuration(3 * time.Millisecond)
	s := h.Snapshot()
	if s.Count != 1 || s.P50 < int64(3*time.Millisecond) {
		t.Errorf("snapshot = %+v", s)
	}
	if !strings.Contains(s.String(), "n=1") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Load() != 5 {
		t.Errorf("Load = %d", c.Load())
	}
	if c.Reset() != 5 || c.Load() != 0 {
		t.Error("Reset must return prior value and zero the counter")
	}
}

func TestMeter(t *testing.T) {
	m := NewMeter()
	m.Mark(10)
	if m.Ops() != 10 {
		t.Errorf("Ops = %d", m.Ops())
	}
	if m.Rate() <= 0 {
		t.Error("Rate must be positive after marks")
	}
}

func TestFormatTable(t *testing.T) {
	out := FormatTable(
		[]string{"scheme", "latency"},
		[][]string{{"sync-full", "5x"}, {"async", "1x"}},
	)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("want 4 lines, got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "scheme") || !strings.Contains(lines[2], "sync-full") {
		t.Errorf("table malformed:\n%s", out)
	}
}
