package metrics

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical stage names recorded by the per-operation traces and the
// stage-latency histograms. DESIGN.md's Observability section documents
// which pipeline point owns each stage.
const (
	StageWAL        = "wal"          // WAL append + sync of one batch
	StageMemtable   = "memtable"     // memtable inserts of one batch
	StageIndexRPC   = "index-rpc"    // synchronous index maintenance (sync-full/sync-insert)
	StageIndexLocal = "index-local"  // local-index cells written into the row's own region
	StageAUQEnqueue = "auq-enqueue"  // enqueue onto the async update queue (blocks on backpressure)
	StageAPSDeliver = "aps-delivery" // enqueue → index cells durable (recorded after the fact)
	StageFlushDrain = "flush-drain"  // pre-flush AUQ drain (§5.3 pause-and-drain)
	StageStoreGet   = "store-get"    // LSM point read (all components merged)
	StageStoreScan  = "store-scan"   // LSM range read
	StageFlush      = "flush"        // whole memtable flush
	StageIndexScan  = "index-scan"   // index-table scan of an index read
	StageCheck      = "double-check" // sync-insert read-repair double checks (Algorithm 2)
	StageRepair     = "repair"       // batched deletion of stale entries found by a read
	StageMultiGet   = "multi-get"    // region-grouped batch read wave (FetchRows, SR2 batch)
)

// Stage is one attributed span of an operation's pipeline.
type Stage struct {
	Name string        `json:"name"`
	Dur  time.Duration `json:"dur_ns"`
}

// Trace is the per-operation trace context: it rides one client operation
// from the client library through the region server, the LSM store and the
// index-maintenance pipeline, accumulating per-stage durations. A nil
// *Trace is valid and records nothing, so instrumentation points call its
// methods unconditionally.
type Trace struct {
	op    string
	table string
	start time.Time

	mu     sync.Mutex
	stages []Stage
	notes  map[string]string
}

// Op returns the operation name (put, get, scan, index-get, ...).
func (t *Trace) Op() string { return t.op }

// Table returns the table the operation addressed.
func (t *Trace) Table() string { return t.table }

// AddStage appends one completed stage. Safe on a nil trace.
func (t *Trace) AddStage(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.stages = append(t.stages, Stage{Name: name, Dur: d})
	t.mu.Unlock()
}

// noopEnd avoids a closure allocation on the disabled-tracing path.
var noopEnd = func() {}

// StartStage begins a stage and returns the function that ends it,
// appending the measured duration. Safe on a nil trace.
func (t *Trace) StartStage(name string) func() {
	if t == nil {
		return noopEnd
	}
	start := time.Now()
	return func() { t.AddStage(name, time.Since(start)) }
}

// Annotate attaches a key/value note to the trace — positional context a
// duration can't carry, like the WAL position ("wal_pos" = "segment@offset")
// of the batch a stalled append was writing. Later values overwrite earlier
// ones for the same key. Safe on a nil trace.
func (t *Trace) Annotate(key, value string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if t.notes == nil {
		t.notes = make(map[string]string, 2)
	}
	t.notes[key] = value
	t.mu.Unlock()
}

// Notes returns a copy of the annotations recorded so far (nil when none).
func (t *Trace) Notes() map[string]string {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.notes) == 0 {
		return nil
	}
	out := make(map[string]string, len(t.notes))
	for k, v := range t.notes {
		out[k] = v
	}
	return out
}

// Stages returns a copy of the stages recorded so far.
func (t *Trace) Stages() []Stage {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Stage, len(t.stages))
	copy(out, t.stages)
	return out
}

// SlowOp is one entry of the slow-operation log: a completed operation with
// its total latency and stage breakdown.
type SlowOp struct {
	Op     string            `json:"op"`
	Table  string            `json:"table"`
	Total  time.Duration     `json:"total_ns"`
	Stages []Stage           `json:"stages,omitempty"`
	Notes  map[string]string `json:"notes,omitempty"`
}

// SlowOpLog retains the K slowest completed operations seen so far. Offer
// is cheap for the common (fast) operation: an atomic threshold check
// rejects anything faster than the current K-th slowest without locking.
type SlowOpLog struct {
	k   int
	min atomic.Int64 // admission threshold in ns; 0 until the log is full

	mu  sync.Mutex
	ops []SlowOp
}

// NewSlowOpLog returns a log retaining the k slowest ops (k ≤ 0 disables).
func NewSlowOpLog(k int) *SlowOpLog { return &SlowOpLog{k: k} }

// Offer records op if it ranks among the K slowest.
func (l *SlowOpLog) Offer(op SlowOp) {
	if l == nil || l.k <= 0 {
		return
	}
	if int64(op.Total) <= l.min.Load() {
		return // faster than the current K-th slowest: not admissible
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.ops) < l.k {
		l.ops = append(l.ops, op)
	} else {
		// Replace the fastest retained op (the threshold guaranteed op is
		// slower than it, barring a benign race we re-check here).
		minIdx := 0
		for i, o := range l.ops {
			if o.Total < l.ops[minIdx].Total {
				minIdx = i
			}
		}
		if l.ops[minIdx].Total >= op.Total {
			return
		}
		l.ops[minIdx] = op
	}
	if len(l.ops) == l.k {
		minDur := l.ops[0].Total
		for _, o := range l.ops {
			if o.Total < minDur {
				minDur = o.Total
			}
		}
		l.min.Store(int64(minDur))
	}
}

// Snapshot returns the retained ops, slowest first.
func (l *SlowOpLog) Snapshot() []SlowOp {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	out := make([]SlowOp, len(l.ops))
	copy(out, l.ops)
	l.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Total > out[j].Total })
	return out
}

// Tracer mints and finishes operation traces against a registry: Finish
// records the operation's total latency into the per-op/per-table histogram
// and offers the trace to the slow-op log. A nil or disabled tracer returns
// nil traces, making the whole tracing path a no-op.
type Tracer struct {
	reg      *Registry
	slow     *SlowOpLog
	disabled bool
}

// NewTracer builds a tracer over reg with a slow-op log of size slowK.
func NewTracer(reg *Registry, slowK int, disabled bool) *Tracer {
	return &Tracer{reg: reg, slow: NewSlowOpLog(slowK), disabled: disabled}
}

// Start begins tracing one operation; returns nil when tracing is disabled.
func (tr *Tracer) Start(op, table string) *Trace {
	if tr == nil || tr.disabled {
		return nil
	}
	return &Trace{op: op, table: table, start: time.Now()}
}

// Finish completes a trace: the total latency lands in the
// op-latency histogram for (op, table) and the trace is offered to the
// slow-op log. Safe with a nil trace or tracer.
func (tr *Tracer) Finish(t *Trace) {
	if tr == nil || t == nil {
		return
	}
	total := time.Since(t.start)
	tr.reg.Histogram("diffindex_op_latency_ns", L("op", t.op), L("table", t.table)).RecordDuration(total)
	tr.slow.Offer(SlowOp{Op: t.op, Table: t.table, Total: total, Stages: t.Stages(), Notes: t.Notes()})
}

// SlowOps returns the slowest operations recorded so far, slowest first.
func (tr *Tracer) SlowOps() []SlowOp {
	if tr == nil {
		return nil
	}
	return tr.slow.Snapshot()
}
