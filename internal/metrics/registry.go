package metrics

import (
	"encoding/json"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one dimension of a metric's identity. Diff-Index uses a small,
// closed label vocabulary — table, scheme, server, stage, op — so metric
// cardinality stays bounded by the catalog, not the workload.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Gauge is an instantaneous value (queue depth, memtable bytes). Unlike a
// Counter it can go down.
type Gauge struct{ v atomic.Int64 }

// Set stores the current value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the current value by d (negative to decrease).
func (g *Gauge) Add(d int64) { g.v.Add(d) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Registry is the process-wide metrics namespace: named, labeled counters,
// gauges (stored or computed) and histograms, created on first use and
// shared by every subsequent lookup with the same name and label set. All
// instruments are lock-free on the hot path; the registry lock is taken only
// on lookup (a read lock) and first creation.
//
// One Registry serves a whole DB: the cluster, every region's LSM store, the
// WAL layer, the index runtime and the client library all record into it, so
// a single Snapshot describes the entire system.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*registeredMetric[*Counter]
	gauges     map[string]*registeredMetric[*Gauge]
	gaugeFuncs map[string]*registeredMetric[func() int64]
	hists      map[string]*registeredMetric[*Histogram]
}

type registeredMetric[T any] struct {
	name   string
	labels []Label // sorted by key
	inst   T
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*registeredMetric[*Counter]),
		gauges:     make(map[string]*registeredMetric[*Gauge]),
		gaugeFuncs: make(map[string]*registeredMetric[func() int64]),
		hists:      make(map[string]*registeredMetric[*Histogram]),
	}
}

// key builds the canonical identity string: name{k1=v1,k2=v2} with labels
// sorted by key. It doubles as the snapshot sort key.
func key(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	var b strings.Builder
	b.Grow(len(name) + 16*len(labels))
	b.WriteString(name)
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	b.WriteByte('}')
	return b.String()
}

func sortLabels(labels []Label) []Label {
	if len(labels) < 2 {
		return labels
	}
	out := make([]Label, len(labels))
	copy(out, labels)
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// lookupOrCreate is the shared lookup path: read-locked fast path, then a
// write-locked create that re-checks under the lock.
func lookupOrCreate[T any](r *Registry, m map[string]*registeredMetric[T], name string, labels []Label, make func() T) T {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.RLock()
	reg, ok := m[k]
	r.mu.RUnlock()
	if ok {
		return reg.inst
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if reg, ok = m[k]; ok {
		return reg.inst
	}
	inst := make()
	m[k] = &registeredMetric[T]{name: name, labels: labels, inst: inst}
	return inst
}

// Counter returns the counter registered under name+labels, creating it on
// first use. Callers should cache the returned pointer when the lookup sits
// on a hot path.
func (r *Registry) Counter(name string, labels ...Label) *Counter {
	return lookupOrCreate(r, r.counters, name, labels, func() *Counter { return &Counter{} })
}

// Gauge returns the stored gauge registered under name+labels.
func (r *Registry) Gauge(name string, labels ...Label) *Gauge {
	return lookupOrCreate(r, r.gauges, name, labels, func() *Gauge { return &Gauge{} })
}

// Histogram returns the histogram registered under name+labels.
func (r *Registry) Histogram(name string, labels ...Label) *Histogram {
	return lookupOrCreate(r, r.hists, name, labels, NewHistogram)
}

// RegisterGaugeFunc registers a computed gauge: fn is evaluated at snapshot
// (and Value) time. Re-registering the same name+labels replaces the
// function. fn must be safe for concurrent use and must not call back into
// the registry.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64, labels ...Label) {
	labels = sortLabels(labels)
	k := key(name, labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[k] = &registeredMetric[func() int64]{name: name, labels: labels, inst: fn}
}

// Value reads a single scalar metric by name+labels, checking counters,
// stored gauges and computed gauges in that order. It is the lookup path of
// the legacy accessors (HotPathStats, IOCounts) re-implemented as registry
// views. ok is false when no such metric exists.
func (r *Registry) Value(name string, labels ...Label) (v int64, ok bool) {
	k := key(name, sortLabels(labels))
	r.mu.RLock()
	if c, found := r.counters[k]; found {
		r.mu.RUnlock()
		return c.inst.Load(), true
	}
	if g, found := r.gauges[k]; found {
		r.mu.RUnlock()
		return g.inst.Load(), true
	}
	gf, found := r.gaugeFuncs[k]
	r.mu.RUnlock()
	if found {
		// Evaluate outside the registry lock: gauge funcs may take their
		// own locks (e.g. the AUQ-depth roll-up) and must not nest inside
		// the registry's.
		return gf.inst(), true
	}
	return 0, false
}

// MetricPoint is one scalar metric (counter or gauge) in a snapshot.
type MetricPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Value  int64             `json:"value"`
}

// HistogramPoint is one histogram's summary in a snapshot. Latency
// histograms are in nanoseconds; size histograms (e.g. APS batch sizes) are
// unitless.
type HistogramPoint struct {
	Name   string            `json:"name"`
	Labels map[string]string `json:"labels,omitempty"`
	Count  int64             `json:"count"`
	Mean   float64           `json:"mean"`
	Min    int64             `json:"min"`
	Max    int64             `json:"max"`
	P50    int64             `json:"p50"`
	P95    int64             `json:"p95"`
	P99    int64             `json:"p99"`
	P999   int64             `json:"p999"`
}

// RegistrySnapshot is a point-in-time copy of every registered metric,
// sorted by canonical identity so repeated snapshots (and their JSON
// encodings) are stably ordered.
type RegistrySnapshot struct {
	Counters   []MetricPoint    `json:"counters"`
	Gauges     []MetricPoint    `json:"gauges"`
	Histograms []HistogramPoint `json:"histograms"`
}

// MarshalStableJSON encodes the snapshot with a fixed field order and
// alphabetical label keys — the format guarded by the golden-file test.
func (s RegistrySnapshot) MarshalStableJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

func labelMap(labels []Label) map[string]string {
	if len(labels) == 0 {
		return nil
	}
	m := make(map[string]string, len(labels))
	for _, l := range labels {
		m[l.Key] = l.Value
	}
	return m
}

// Snapshot copies every metric. Computed gauges are evaluated outside the
// registry lock (see RegisterGaugeFunc). Each instrument is read atomically
// but the snapshot as a whole is not a consistent cut: metrics recorded
// while the snapshot is being taken may appear in some instruments and not
// others.
func (r *Registry) Snapshot() RegistrySnapshot {
	r.mu.RLock()
	counterKeys := sortedKeys(r.counters)
	gaugeKeys := sortedKeys(r.gauges)
	gfKeys := sortedKeys(r.gaugeFuncs)
	histKeys := sortedKeys(r.hists)
	counters := make([]*registeredMetric[*Counter], len(counterKeys))
	for i, k := range counterKeys {
		counters[i] = r.counters[k]
	}
	gauges := make([]*registeredMetric[*Gauge], len(gaugeKeys))
	for i, k := range gaugeKeys {
		gauges[i] = r.gauges[k]
	}
	gfs := make([]*registeredMetric[func() int64], len(gfKeys))
	for i, k := range gfKeys {
		gfs[i] = r.gaugeFuncs[k]
	}
	hists := make([]*registeredMetric[*Histogram], len(histKeys))
	for i, k := range histKeys {
		hists[i] = r.hists[k]
	}
	r.mu.RUnlock()

	var snap RegistrySnapshot
	for _, c := range counters {
		snap.Counters = append(snap.Counters, MetricPoint{Name: c.name, Labels: labelMap(c.labels), Value: c.inst.Load()})
	}
	for _, g := range gauges {
		snap.Gauges = append(snap.Gauges, MetricPoint{Name: g.name, Labels: labelMap(g.labels), Value: g.inst.Load()})
	}
	for _, gf := range gfs {
		snap.Gauges = append(snap.Gauges, MetricPoint{Name: gf.name, Labels: labelMap(gf.labels), Value: gf.inst()})
	}
	// Stored and computed gauges merge into one sorted section.
	sort.Slice(snap.Gauges, func(i, j int) bool {
		return gaugeSortKey(snap.Gauges[i]) < gaugeSortKey(snap.Gauges[j])
	})
	for _, h := range hists {
		hs := h.inst.Snapshot()
		snap.Histograms = append(snap.Histograms, HistogramPoint{
			Name: h.name, Labels: labelMap(h.labels),
			Count: hs.Count, Mean: hs.Mean, Min: hs.Min, Max: hs.Max,
			P50: hs.P50, P95: hs.P95, P99: hs.P99, P999: hs.P999,
		})
	}
	return snap
}

func gaugeSortKey(p MetricPoint) string {
	labels := make([]Label, 0, len(p.Labels))
	for k, v := range p.Labels {
		labels = append(labels, Label{k, v})
	}
	return key(p.Name, sortLabels(labels))
}

func sortedKeys[T any](m map[string]*registeredMetric[T]) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
