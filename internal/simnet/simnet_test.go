package simnet

import (
	"errors"
	"testing"
	"time"
)

func TestCallExecutesAndChargesLatency(t *testing.T) {
	n := New(Config{RTT: 100 * time.Microsecond})
	var slept time.Duration
	n.sleep = func(d time.Duration) { slept += d }
	ran := false
	err := n.Call("client", "server1", func() error { ran = true; return nil })
	if err != nil || !ran {
		t.Fatalf("Call failed: %v ran=%v", err, ran)
	}
	if slept != 100*time.Microsecond {
		t.Errorf("slept %v, want full RTT", slept)
	}
	if n.Calls() != 1 {
		t.Errorf("Calls = %d", n.Calls())
	}
}

func TestLocalCallFree(t *testing.T) {
	n := New(Config{RTT: time.Second})
	n.sleep = func(time.Duration) { t.Error("local call slept") }
	if err := n.Call("s1", "s1", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestCallPropagatesError(t *testing.T) {
	n := New(Config{})
	want := errors.New("boom")
	if err := n.Call("a", "b", func() error { return want }); !errors.Is(err, want) {
		t.Errorf("got %v", err)
	}
}

func TestPartitionBlocksAndHeals(t *testing.T) {
	n := New(Config{})
	n.Partition("a", "b")
	ran := false
	if err := n.Call("a", "b", func() error { ran = true; return nil }); !errors.Is(err, ErrPartitioned) {
		t.Errorf("partitioned call: %v", err)
	}
	if ran {
		t.Error("fn ran across a partition")
	}
	// Symmetric.
	if err := n.Call("b", "a", func() error { return nil }); !errors.Is(err, ErrPartitioned) {
		t.Errorf("reverse partitioned call: %v", err)
	}
	// Unrelated pairs unaffected.
	if err := n.Call("a", "c", func() error { return nil }); err != nil {
		t.Errorf("unrelated call: %v", err)
	}
	n.Heal("b", "a")
	if err := n.Call("a", "b", func() error { return nil }); err != nil {
		t.Errorf("healed call: %v", err)
	}
	n.Partition("a", "b")
	n.Partition("a", "c")
	n.HealAll()
	if err := n.Call("a", "b", func() error { return nil }); err != nil {
		t.Errorf("after HealAll: %v", err)
	}
	if err := n.Call("a", "c", func() error { return nil }); err != nil {
		t.Errorf("after HealAll: %v", err)
	}
}

func TestJitterBounded(t *testing.T) {
	n := New(Config{RTT: 100 * time.Microsecond, Jitter: 50 * time.Microsecond})
	var total time.Duration
	n.sleep = func(d time.Duration) { total += d }
	for i := 0; i < 100; i++ {
		total = 0
		n.Call("a", "b", func() error { return nil })
		if total < 100*time.Microsecond || total >= 200*time.Microsecond {
			t.Fatalf("RTT with jitter = %v, want [100µs, 200µs)", total)
		}
	}
}
