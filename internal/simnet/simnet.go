// Package simnet simulates the cluster network. Every client↔server and
// server↔server interaction is an RPC that pays a configurable round-trip
// latency, and node pairs can be partitioned to inject failures. This stands
// in for the real 10-machine (and 42-VM, §8.1) cluster network: the paper's
// global index is more expensive to update than a local one precisely
// because index regions are usually remote (§3.1), and that cost shows up
// here as simnet latency on every index-table operation.
package simnet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPartitioned is returned when a call crosses an active network partition.
var ErrPartitioned = errors.New("simnet: network partition between nodes")

// ErrDropped is returned when an injected fault drops an RPC message. A
// dropped request never executes; a dropped response executes the call but
// loses the acknowledgement — the classic "applied but not acked" failure.
var ErrDropped = errors.New("simnet: message dropped")

// Config sets the latency model.
type Config struct {
	// RTT is the round-trip time charged per call (half before the call
	// executes, half before the response returns).
	RTT time.Duration
	// Jitter, if non-zero, adds a uniform random duration in [0, Jitter) to
	// each direction.
	Jitter time.Duration
}

// FaultConfig arms the network with a seeded message-level fault
// distribution, the chaos harness's second injector (alongside
// vfs.FaultFS). Probabilities are per message direction (request and
// response roll independently); zero disables that fault kind.
type FaultConfig struct {
	// Seed initializes the fault decision stream.
	Seed int64
	// DropProb loses a message: a dropped request fails the call without
	// executing it, a dropped response executes the call but returns
	// ErrDropped — the caller cannot tell which happened, like a real
	// timeout.
	DropProb float64
	// DelayProb stalls a message by ExtraDelay on top of the normal
	// latency model.
	DelayProb float64
	// ExtraDelay is the stall charged to a delayed message.
	ExtraDelay time.Duration
}

func (c FaultConfig) enabled() bool { return c.DropProb > 0 || c.DelayProb > 0 }

// Network connects named nodes with simulated latency and partitions.
type Network struct {
	cfg Config

	mu         sync.RWMutex
	partitions map[[2]string]bool
	rng        *rand.Rand
	faults     FaultConfig
	faultRng   *rand.Rand

	calls   atomic.Int64
	drops   atomic.Int64
	delays  atomic.Int64
	faulted atomic.Bool
	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// New returns a network with the given latency model.
func New(cfg Config) *Network {
	return &Network{
		cfg:        cfg,
		partitions: make(map[[2]string]bool),
		rng:        rand.New(rand.NewSource(0xD1F)),
		sleep:      time.Sleep,
	}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (n *Network) oneWay() time.Duration {
	d := n.cfg.RTT / 2
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	return d
}

// messageFault samples the injected fault for one message direction:
// dropped reports a lost message, delay is extra stall to charge.
func (n *Network) messageFault() (dropped bool, delay time.Duration) {
	if !n.faulted.Load() {
		return false, 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.faults.DelayProb > 0 && n.faultRng.Float64() < n.faults.DelayProb {
		delay = n.faults.ExtraDelay
	}
	if n.faults.DropProb > 0 && n.faultRng.Float64() < n.faults.DropProb {
		dropped = true
	}
	return dropped, delay
}

// Call executes fn as an RPC from node `from` to node `to`, charging latency
// in both directions. Local calls (from == to) are free, matching collocated
// access. If the pair is partitioned the call fails without executing fn;
// injected message faults (ArmFaults) can likewise drop or delay either
// direction.
func (n *Network) Call(from, to string, fn func() error) error {
	n.calls.Add(1)
	if from == to {
		return fn()
	}
	n.mu.RLock()
	cut := n.partitions[pairKey(from, to)]
	n.mu.RUnlock()
	if cut {
		return ErrPartitioned
	}
	dropped, extra := n.messageFault()
	if d := n.oneWay() + extra; d > 0 {
		n.sleep(d)
	}
	if dropped {
		// The request was lost in flight: fn never executes.
		n.drops.Add(1)
		return ErrDropped
	} else if extra > 0 {
		n.delays.Add(1)
	}
	err := fn()
	// The response also checks the partition state: a partition that forms
	// mid-call loses the response, like a real network.
	n.mu.RLock()
	cut = n.partitions[pairKey(from, to)]
	n.mu.RUnlock()
	if cut {
		return ErrPartitioned
	}
	dropped, extra = n.messageFault()
	if d := n.oneWay() + extra; d > 0 {
		n.sleep(d)
	}
	if dropped {
		// The response was lost: fn DID execute, but the caller cannot know.
		n.drops.Add(1)
		return ErrDropped
	} else if extra > 0 {
		n.delays.Add(1)
	}
	return err
}

// ArmFaults installs (or replaces) the message-fault distribution, reseeding
// the decision stream from cfg.Seed.
func (n *Network) ArmFaults(cfg FaultConfig) {
	n.mu.Lock()
	n.faults = cfg
	n.faultRng = rand.New(rand.NewSource(cfg.Seed))
	n.mu.Unlock()
	n.faulted.Store(cfg.enabled())
}

// DisarmFaults stops message-fault injection.
func (n *Network) DisarmFaults() {
	n.faulted.Store(false)
	n.mu.Lock()
	n.faults = FaultConfig{}
	n.mu.Unlock()
}

// FaultCounts returns the cumulative injected drop and delay counts.
func (n *Network) FaultCounts() (drops, delays int64) {
	return n.drops.Load(), n.delays.Load()
}

// Partition cuts connectivity between two nodes until Heal or HealAll.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(a, b)] = true
}

// Heal restores connectivity between two nodes.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(a, b))
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[[2]string]bool)
}

// Calls returns the cumulative RPC count (including local calls).
func (n *Network) Calls() int64 { return n.calls.Load() }
