// Package simnet simulates the cluster network. Every client↔server and
// server↔server interaction is an RPC that pays a configurable round-trip
// latency, and node pairs can be partitioned to inject failures. This stands
// in for the real 10-machine (and 42-VM, §8.1) cluster network: the paper's
// global index is more expensive to update than a local one precisely
// because index regions are usually remote (§3.1), and that cost shows up
// here as simnet latency on every index-table operation.
package simnet

import (
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"
)

// ErrPartitioned is returned when a call crosses an active network partition.
var ErrPartitioned = errors.New("simnet: network partition between nodes")

// Config sets the latency model.
type Config struct {
	// RTT is the round-trip time charged per call (half before the call
	// executes, half before the response returns).
	RTT time.Duration
	// Jitter, if non-zero, adds a uniform random duration in [0, Jitter) to
	// each direction.
	Jitter time.Duration
}

// Network connects named nodes with simulated latency and partitions.
type Network struct {
	cfg Config

	mu         sync.RWMutex
	partitions map[[2]string]bool
	rng        *rand.Rand

	calls atomic.Int64
	// sleep is replaceable for tests.
	sleep func(time.Duration)
}

// New returns a network with the given latency model.
func New(cfg Config) *Network {
	return &Network{
		cfg:        cfg,
		partitions: make(map[[2]string]bool),
		rng:        rand.New(rand.NewSource(0xD1F)),
		sleep:      time.Sleep,
	}
}

func pairKey(a, b string) [2]string {
	if a > b {
		a, b = b, a
	}
	return [2]string{a, b}
}

func (n *Network) oneWay() time.Duration {
	d := n.cfg.RTT / 2
	if n.cfg.Jitter > 0 {
		n.mu.Lock()
		d += time.Duration(n.rng.Int63n(int64(n.cfg.Jitter)))
		n.mu.Unlock()
	}
	return d
}

// Call executes fn as an RPC from node `from` to node `to`, charging latency
// in both directions. Local calls (from == to) are free, matching collocated
// access. If the pair is partitioned the call fails without executing fn.
func (n *Network) Call(from, to string, fn func() error) error {
	n.calls.Add(1)
	if from == to {
		return fn()
	}
	n.mu.RLock()
	cut := n.partitions[pairKey(from, to)]
	n.mu.RUnlock()
	if cut {
		return ErrPartitioned
	}
	if d := n.oneWay(); d > 0 {
		n.sleep(d)
	}
	err := fn()
	// The response also checks the partition state: a partition that forms
	// mid-call loses the response, like a real network.
	n.mu.RLock()
	cut = n.partitions[pairKey(from, to)]
	n.mu.RUnlock()
	if cut {
		return ErrPartitioned
	}
	if d := n.oneWay(); d > 0 {
		n.sleep(d)
	}
	return err
}

// Partition cuts connectivity between two nodes until Heal or HealAll.
func (n *Network) Partition(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions[pairKey(a, b)] = true
}

// Heal restores connectivity between two nodes.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitions, pairKey(a, b))
}

// HealAll removes every partition.
func (n *Network) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.partitions = make(map[[2]string]bool)
}

// Calls returns the cumulative RPC count (including local calls).
func (n *Network) Calls() int64 { return n.calls.Load() }
