package simnet

import (
	"errors"
	"testing"
	"time"
)

func TestRequestDropNeverExecutes(t *testing.T) {
	n := New(Config{})
	n.ArmFaults(FaultConfig{Seed: 1, DropProb: 1})
	executed := false
	err := n.Call("a", "b", func() error { executed = true; return nil })
	if !errors.Is(err, ErrDropped) {
		t.Fatalf("err = %v, want ErrDropped", err)
	}
	if executed {
		t.Error("dropped request executed the call")
	}
	if drops, _ := n.FaultCounts(); drops != 1 {
		t.Errorf("drops = %d, want 1", drops)
	}
	n.DisarmFaults()
	if err := n.Call("a", "b", func() error { executed = true; return nil }); err != nil || !executed {
		t.Fatalf("disarmed call: err=%v executed=%v", err, executed)
	}
}

// With a partial drop probability both failure modes must occur: requests
// lost before execution, and responses lost after — the latter leaves the
// call applied but unacknowledged, which is the case the durability checker
// tolerates by timestamp.
func TestResponseDropExecutesButFails(t *testing.T) {
	n := New(Config{})
	n.ArmFaults(FaultConfig{Seed: 7, DropProb: 0.3})
	var reqDrops, respDrops, clean int
	for i := 0; i < 300; i++ {
		executed := false
		err := n.Call("a", "b", func() error { executed = true; return nil })
		switch {
		case err == nil:
			clean++
		case errors.Is(err, ErrDropped) && executed:
			respDrops++
		case errors.Is(err, ErrDropped) && !executed:
			reqDrops++
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if reqDrops == 0 || respDrops == 0 || clean == 0 {
		t.Fatalf("want all three outcomes; got req=%d resp=%d clean=%d", reqDrops, respDrops, clean)
	}
}

func TestLocalCallsSkipFaults(t *testing.T) {
	n := New(Config{})
	n.ArmFaults(FaultConfig{Seed: 1, DropProb: 1})
	if err := n.Call("a", "a", func() error { return nil }); err != nil {
		t.Fatalf("local call faulted: %v", err)
	}
}

func TestDelayFaultStallsMessages(t *testing.T) {
	n := New(Config{})
	var slept time.Duration
	n.sleep = func(d time.Duration) { slept += d }
	n.ArmFaults(FaultConfig{Seed: 1, DelayProb: 1, ExtraDelay: 2 * time.Millisecond})
	if err := n.Call("a", "b", func() error { return nil }); err != nil {
		t.Fatal(err)
	}
	if slept < 4*time.Millisecond { // both directions delayed
		t.Errorf("slept %v, want ≥ 4ms", slept)
	}
	if _, delays := n.FaultCounts(); delays != 2 {
		t.Errorf("delays = %d, want 2", delays)
	}
}

func TestFaultsAreDeterministic(t *testing.T) {
	run := func() []bool {
		n := New(Config{})
		n.ArmFaults(FaultConfig{Seed: 99, DropProb: 0.5})
		out := make([]bool, 200)
		for i := range out {
			out[i] = n.Call("a", "b", func() error { return nil }) != nil
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault decision %d differs across runs with the same seed", i)
		}
	}
}
