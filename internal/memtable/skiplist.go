// Package memtable implements the in-memory component of the LSM tree: the
// paper's mem-store (§2.1), HBase's MemTable (§2.2). Writes append versioned
// cells to a concurrent skip list; at capacity the LSM store flushes the
// memtable's contents to an immutable SSTable. The skip list follows the
// LevelDB design: writers are serialized by a mutex, readers traverse atomic
// pointers without locking, and nodes are never unlinked (the memtable is
// discarded wholesale after flush).
package memtable

import (
	"math/rand"
	"sync"
	"sync/atomic"

	"diffindex/internal/kv"
)

const maxHeight = 16

type node struct {
	ikey  []byte // internal key: userKey · ^ts · kind
	value atomic.Pointer[[]byte]
	next  []atomic.Pointer[node]
}

func newNode(ikey, value []byte, height int) *node {
	n := &node{ikey: ikey, next: make([]atomic.Pointer[node], height)}
	n.value.Store(&value)
	return n
}

// skiplist is an ordered map from internal key to value.
type skiplist struct {
	head   *node
	mu     sync.Mutex // serializes writers; readers are lock-free
	height atomic.Int32
	rng    *rand.Rand
	bytes  atomic.Int64
	count  atomic.Int64
}

func newSkiplist() *skiplist {
	s := &skiplist{
		head: newNode(nil, nil, maxHeight),
		rng:  rand.New(rand.NewSource(0x5EED)),
	}
	s.height.Store(1)
	return s
}

func (s *skiplist) randomHeight() int {
	h := 1
	for h < maxHeight && s.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// findGreaterOrEqual returns the first node with ikey ≥ key, filling prev
// (when non-nil) with the predecessor at every level.
func (s *skiplist) findGreaterOrEqual(key []byte, prev []*node) *node {
	x := s.head
	level := int(s.height.Load()) - 1
	for {
		next := x.next[level].Load()
		if next != nil && kv.CompareInternal(next.ikey, key) < 0 {
			x = next
			continue
		}
		if prev != nil {
			prev[level] = x
		}
		if level == 0 {
			return next
		}
		level--
	}
}

// set inserts or overwrites the value for an internal key. Overwriting
// happens when the same (userKey, ts, kind) is written twice, which LSM
// semantics define as idempotent (§5.3: replayed puts reuse timestamps).
func (s *skiplist) set(ikey, value []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()

	prev := make([]*node, maxHeight)
	if found := s.findGreaterOrEqual(ikey, prev); found != nil && kv.CompareInternal(found.ikey, ikey) == 0 {
		old := found.value.Load()
		found.value.Store(&value)
		s.bytes.Add(int64(len(value)) - int64(len(*old)))
		return
	}

	height := s.randomHeight()
	if cur := int(s.height.Load()); height > cur {
		for i := cur; i < height; i++ {
			prev[i] = s.head
		}
		s.height.Store(int32(height))
	}
	n := newNode(ikey, value, height)
	for i := 0; i < height; i++ {
		n.next[i].Store(prev[i].next[i].Load())
		prev[i].next[i].Store(n)
	}
	s.bytes.Add(int64(len(ikey)+len(value)) + 64) // 64 ≈ per-node overhead
	s.count.Add(1)
}

// get returns the value stored under the exact internal key.
func (s *skiplist) get(ikey []byte) ([]byte, bool) {
	n := s.findGreaterOrEqual(ikey, nil)
	if n != nil && kv.CompareInternal(n.ikey, ikey) == 0 {
		return *n.value.Load(), true
	}
	return nil, false
}

// iterator walks the skip list in internal-key order. It is safe to use
// concurrently with writers: it observes a superset of the entries present
// when it was created.
type iterator struct {
	list *skiplist
	n    *node
}

func (it *iterator) valid() bool { return it.n != nil }

func (it *iterator) seekToFirst() { it.n = it.list.head.next[0].Load() }

func (it *iterator) seek(ikey []byte) { it.n = it.list.findGreaterOrEqual(ikey, nil) }

func (it *iterator) next() { it.n = it.n.next[0].Load() }

func (it *iterator) key() []byte { return it.n.ikey }

func (it *iterator) val() []byte { return *it.n.value.Load() }
