package memtable

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"
	"testing/quick"

	"diffindex/internal/kv"
)

func TestPutGetNewestVisible(t *testing.T) {
	m := New()
	key := []byte("row1\x00col")
	m.Put(key, []byte("v1"), 10)
	m.Put(key, []byte("v2"), 20)
	m.Put(key, []byte("v3"), 30)

	cases := []struct {
		ts    kv.Timestamp
		want  string
		found bool
	}{
		{5, "", false},
		{10, "v1", true},
		{15, "v1", true},
		{20, "v2", true},
		{29, "v2", true},
		{30, "v3", true},
		{kv.MaxTimestamp, "v3", true},
	}
	for _, c := range cases {
		cell, ok := m.Get(key, c.ts)
		if ok != c.found {
			t.Errorf("Get(ts=%d) found=%v, want %v", c.ts, ok, c.found)
			continue
		}
		if ok && string(cell.Value) != c.want {
			t.Errorf("Get(ts=%d) = %q, want %q", c.ts, cell.Value, c.want)
		}
	}
}

func TestDeleteMasksOlderVersions(t *testing.T) {
	m := New()
	key := []byte("k")
	m.Put(key, []byte("v1"), 10)
	m.Delete(key, 20)
	m.Put(key, []byte("v2"), 30)

	if c, ok := m.Get(key, 15); !ok || c.Tombstone() || string(c.Value) != "v1" {
		t.Errorf("ts=15: %+v ok=%v", c, ok)
	}
	if c, ok := m.Get(key, 25); !ok || !c.Tombstone() {
		t.Errorf("ts=25 must see tombstone: %+v ok=%v", c, ok)
	}
	if c, ok := m.Get(key, 35); !ok || c.Tombstone() || string(c.Value) != "v2" {
		t.Errorf("ts=35: %+v ok=%v", c, ok)
	}
}

func TestDeleteAndPutSameTimestamp(t *testing.T) {
	// A tombstone at ts T must mask a put at the same T (HBase rule).
	m := New()
	key := []byte("k")
	m.Put(key, []byte("v"), 10)
	m.Delete(key, 10)
	if c, ok := m.Get(key, 10); !ok || !c.Tombstone() {
		t.Errorf("delete must win at equal ts: %+v ok=%v", c, ok)
	}
}

func TestIdempotentReplay(t *testing.T) {
	// Re-adding an identical cell (same key, ts, kind) must be a no-op with
	// respect to reads — the paper's recovery protocol depends on this.
	m := New()
	c := kv.Cell{Key: []byte("k"), Value: []byte("v"), Ts: 7, Kind: kv.KindPut}
	m.Add(c)
	m.Add(c)
	m.Add(c)
	if m.Len() != 1 {
		t.Errorf("Len = %d after idempotent re-adds, want 1", m.Len())
	}
	got, ok := m.Get([]byte("k"), 7)
	if !ok || string(got.Value) != "v" {
		t.Errorf("Get = %+v, %v", got, ok)
	}
}

func TestGetMissingAndPrefixKeys(t *testing.T) {
	m := New()
	m.Put([]byte("abc"), []byte("v"), 5)
	if _, ok := m.Get([]byte("ab"), 100); ok {
		t.Error("prefix of a stored key must not be found")
	}
	if _, ok := m.Get([]byte("abcd"), 100); ok {
		t.Error("extension of a stored key must not be found")
	}
	if _, ok := m.Get([]byte("zzz"), 100); ok {
		t.Error("missing key must not be found")
	}
}

func TestIteratorOrder(t *testing.T) {
	m := New()
	m.Put([]byte("b"), []byte("b10"), 10)
	m.Put([]byte("a"), []byte("a20"), 20)
	m.Put([]byte("a"), []byte("a10"), 10)
	m.Delete([]byte("b"), 20)

	it := m.Iterator()
	var got []string
	for it.SeekToFirst(); it.Valid(); it.Next() {
		c := it.Cell()
		got = append(got, fmt.Sprintf("%s@%d/%s", c.Key, c.Ts, c.Kind))
	}
	want := []string{"a@20/put", "a@10/put", "b@20/delete", "b@10/put"}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

func TestIteratorSeekVersion(t *testing.T) {
	m := New()
	for ts := kv.Timestamp(1); ts <= 5; ts++ {
		m.Put([]byte("k"), []byte{byte('0' + ts)}, ts)
	}
	it := m.Iterator()
	it.SeekVersion([]byte("k"), 3)
	if !it.Valid() {
		t.Fatal("SeekVersion found nothing")
	}
	if c := it.Cell(); c.Ts != 3 {
		t.Errorf("SeekVersion landed on ts=%d, want 3", c.Ts)
	}
}

func TestApproximateBytesGrows(t *testing.T) {
	m := New()
	before := m.ApproximateBytes()
	m.Put(bytes.Repeat([]byte("k"), 100), bytes.Repeat([]byte("v"), 1000), 1)
	if m.ApproximateBytes() < before+1100 {
		t.Errorf("ApproximateBytes %d did not grow by payload size", m.ApproximateBytes())
	}
}

// TestModelEquivalence drives the memtable and a model map with random
// versioned writes and compares reads at random timestamps.
func TestModelEquivalence(t *testing.T) {
	type version struct {
		ts  kv.Timestamp
		val string
		del bool
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := New()
		model := map[string][]version{}
		keys := []string{"a", "b", "c", "d"}
		for op := 0; op < 200; op++ {
			k := keys[rng.Intn(len(keys))]
			ts := kv.Timestamp(rng.Intn(100) + 1)
			if rng.Intn(4) == 0 {
				m.Delete([]byte(k), ts)
				model[k] = append(model[k], version{ts: ts, del: true})
			} else {
				v := fmt.Sprintf("%s@%d#%d", k, ts, op)
				m.Put([]byte(k), []byte(v), ts)
				// Same key+ts put overwrites in both model and memtable.
				model[k] = append(model[k], version{ts: ts, val: v})
			}
		}
		for _, k := range keys {
			for ts := kv.Timestamp(0); ts <= 101; ts++ {
				// Model lookup: newest version ≤ ts; delete wins ties and
				// masks; the latest write wins among equal (ts, kind).
				vs := model[k]
				var best *version
				for i := range vs {
					v := &vs[i]
					if v.ts > ts {
						continue
					}
					if best == nil || v.ts > best.ts {
						best = v
					} else if v.ts == best.ts {
						if v.del == best.del {
							best = v // later write overwrites
						} else if v.del {
							best = v // tombstone wins the tie
						}
					}
				}
				cell, ok := m.Get([]byte(k), ts)
				if best == nil {
					if ok {
						return false
					}
					continue
				}
				if !ok || cell.Ts != best.ts || cell.Tombstone() != best.del {
					return false
				}
				if !best.del && string(cell.Value) != best.val {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestConcurrentReadersAndWriters(t *testing.T) {
	m := New()
	const writers, per = 4, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Concurrent readers iterate while writers insert.
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				it := m.Iterator()
				prev := []byte(nil)
				for it.SeekToFirst(); it.Valid(); it.Next() {
					k := it.InternalKey()
					if prev != nil && kv.CompareInternal(prev, k) > 0 {
						t.Error("iterator out of order under concurrency")
						return
					}
					prev = append(prev[:0], k...)
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				key := []byte(fmt.Sprintf("w%d-k%06d", w, i))
				m.Put(key, []byte("v"), kv.Timestamp(i+1))
			}
		}(w)
	}
	// Wait for writers, then stop readers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	for w := 0; w < writers; w++ {
		// no-op: writers tracked by wg
	}
	// Close stop once writer goroutines have finished their inserts.
	go func() {
		// The writers are part of wg along with readers; poll Len instead.
		for m.Len() < writers*per {
			// busy-wait is fine for a test
		}
		close(stop)
	}()
	<-done
	if m.Len() != writers*per {
		t.Errorf("Len = %d, want %d", m.Len(), writers*per)
	}
	// Verify all entries present.
	for w := 0; w < writers; w++ {
		for _, i := range []int{0, per / 2, per - 1} {
			key := []byte(fmt.Sprintf("w%d-k%06d", w, i))
			if _, ok := m.Get(key, kv.MaxTimestamp); !ok {
				t.Errorf("missing %s", key)
			}
		}
	}
}

func TestSkiplistRandomOrderedInsert(t *testing.T) {
	m := New()
	rng := rand.New(rand.NewSource(7))
	var keys []string
	for i := 0; i < 3000; i++ {
		k := fmt.Sprintf("%010d", rng.Intn(1_000_000))
		keys = append(keys, k)
		m.Put([]byte(k), []byte("v"), 1)
	}
	sort.Strings(keys)
	uniq := keys[:0]
	for i, k := range keys {
		if i == 0 || keys[i-1] != k {
			uniq = append(uniq, k)
		}
	}
	it := m.Iterator()
	i := 0
	for it.SeekToFirst(); it.Valid(); it.Next() {
		c := it.Cell()
		if i >= len(uniq) || string(c.Key) != uniq[i] {
			t.Fatalf("position %d: got %q", i, c.Key)
		}
		i++
	}
	if i != len(uniq) {
		t.Errorf("iterated %d entries, want %d", i, len(uniq))
	}
}

func BenchmarkMemtablePut(b *testing.B) {
	m := New()
	key := make([]byte, 16)
	val := make([]byte, 100)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(key, fmt.Sprintf("%016d", i))
		m.Put(key, val, kv.Timestamp(i+1))
	}
}

func BenchmarkMemtableGet(b *testing.B) {
	m := New()
	const n = 100000
	for i := 0; i < n; i++ {
		m.Put([]byte(fmt.Sprintf("%016d", i)), []byte("value"), kv.Timestamp(i+1))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Get([]byte(fmt.Sprintf("%016d", i%n)), kv.MaxTimestamp)
	}
}
