package memtable

import (
	"diffindex/internal/kv"
)

// Memtable is the mutable in-memory LSM component. It stores multi-versioned
// cells under internal keys; every write is an append (no in-place update,
// §2.1) and deletes insert tombstones.
type Memtable struct {
	list *skiplist
}

// New returns an empty memtable.
func New() *Memtable {
	return &Memtable{list: newSkiplist()}
}

// Put inserts a value version for key at timestamp ts.
func (m *Memtable) Put(key, value []byte, ts kv.Timestamp) {
	m.list.set(kv.InternalKey(key, ts, kv.KindPut), value)
}

// Delete inserts a tombstone for key at timestamp ts, masking all versions
// with timestamp ≤ ts.
func (m *Memtable) Delete(key []byte, ts kv.Timestamp) {
	m.list.set(kv.InternalKey(key, ts, kv.KindDelete), nil)
}

// Add inserts a pre-built cell (used by WAL replay, which must reuse the
// original timestamps so that re-application is idempotent).
func (m *Memtable) Add(c kv.Cell) {
	m.list.set(kv.InternalKey(c.Key, c.Ts, c.Kind), c.Value)
}

// Get returns the newest version of key with timestamp ≤ ts. The returned
// cell may be a tombstone, which callers must treat as "deleted". The second
// result reports whether any version was found in this memtable.
func (m *Memtable) Get(key []byte, ts kv.Timestamp) (kv.Cell, bool) {
	it := &iterator{list: m.list}
	it.seek(kv.SeekKey(key, ts))
	if !it.valid() {
		return kv.Cell{}, false
	}
	uk, vts, kind, err := kv.ParseInternalKey(it.key())
	if err != nil || string(uk) != string(key) {
		return kv.Cell{}, false
	}
	return kv.Cell{Key: uk, Value: it.val(), Ts: vts, Kind: kind}, true
}

// ApproximateBytes returns the estimated memory footprint, used to trigger
// flushes at the configured memtable size.
func (m *Memtable) ApproximateBytes() int64 { return m.list.bytes.Load() }

// Len returns the number of stored versions (not distinct user keys).
func (m *Memtable) Len() int64 { return m.list.count.Load() }

// Iterator returns a cursor over the memtable in internal-key order.
func (m *Memtable) Iterator() *Iterator {
	return &Iterator{it: iterator{list: m.list}}
}

// Iterator walks all versions in the memtable in internal-key order (user
// key ascending, timestamp descending, tombstones before puts at equal
// timestamps). It is safe to advance while writers insert concurrently.
type Iterator struct {
	it iterator
}

// SeekToFirst positions at the smallest internal key.
func (i *Iterator) SeekToFirst() { i.it.seekToFirst() }

// Seek positions at the first entry with internal key ≥ ikey.
func (i *Iterator) Seek(ikey []byte) { i.it.seek(ikey) }

// SeekVersion positions at the newest version of userKey visible at ts.
func (i *Iterator) SeekVersion(userKey []byte, ts kv.Timestamp) {
	i.it.seek(kv.SeekKey(userKey, ts))
}

// Valid reports whether the iterator is positioned at an entry.
func (i *Iterator) Valid() bool { return i.it.valid() }

// Next advances to the next entry.
func (i *Iterator) Next() { i.it.next() }

// InternalKey returns the current entry's internal key. The slice must not
// be modified.
func (i *Iterator) InternalKey() []byte { return i.it.key() }

// Cell decodes the current entry.
func (i *Iterator) Cell() kv.Cell {
	uk, ts, kind, _ := kv.ParseInternalKey(i.it.key())
	return kv.Cell{Key: uk, Value: i.it.val(), Ts: ts, Kind: kind}
}
