package bench

import (
	"strings"
	"testing"
	"time"
)

// tiny returns a minimal profile so experiment plumbing is testable in
// seconds: the latency model is preserved (the ratios matter), only scale
// and durations shrink.
func tiny() Profile {
	p := Small()
	p.Name = "tiny"
	p.Servers = 3
	p.Records = 300
	p.RegionsPerTable = 3
	p.LoaderThreads = 4
	p.ThreadSweep = []int{1, 4}
	p.RunTime = 60 * time.Millisecond
	return p
}

func TestRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 14 {
		t.Fatalf("registry has %d experiments", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("malformed experiment %+v", e)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := Find("fig7"); err != nil {
		t.Error(err)
	}
	if _, err := Find("nope"); err == nil {
		t.Error("Find(nope) succeeded")
	}
}

func TestProfiles(t *testing.T) {
	s, p := Small(), Paper()
	if s.Records >= p.Records || s.Servers >= p.Servers {
		t.Error("paper profile must be larger than small")
	}
	c := Cloud(s)
	if c.Servers != s.Servers*5 || c.Records != s.Records*5 {
		t.Errorf("cloud profile wrong: %+v", c)
	}
	if c.DiskRead <= s.DiskRead {
		t.Error("cloud profile must have slower disks")
	}
	opts := s.Options()
	if opts.Servers != s.Servers || opts.DiskReadLatency != s.DiskRead {
		t.Error("Options() mapping wrong")
	}
	if len(UpdateSchemes()) != 4 || len(ReadSchemes()) != 3 {
		t.Error("scheme ladders wrong")
	}
}

func TestTable2Experiment(t *testing.T) {
	rep, err := Table2(tiny())
	if err != nil {
		t.Fatal(err)
	}
	out := rep.String()
	for _, want := range []string{"no-index", "sync-full", "sync-insert", "async-simple", "update", "read"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// 4 schemes × update + 3 schemes × read = 7 rows.
	if len(rep.Rows) != 7 {
		t.Errorf("table2 has %d rows:\n%s", len(rep.Rows), out)
	}
}

func TestFig7ExperimentShape(t *testing.T) {
	p := tiny()
	points, err := RunUpdateSweep(p, UpdateSchemes())
	if err != nil {
		t.Fatal(err)
	}
	mean := map[string]float64{}
	for _, pt := range points {
		if pt.Threads == 1 {
			mean[pt.Scheme] = pt.MeanNs
		}
	}
	// The paper's ordering at low load: null < async ≈ insert < full, with
	// full ≈ 5x null and insert ≈ 2x null. Assert the ordering (the robust
	// part of the shape).
	if !(mean["null"] < mean["insert"] && mean["insert"] < mean["full"]) {
		t.Errorf("latency ordering violated: %v", mean)
	}
	if mean["async"] >= mean["full"] {
		t.Errorf("async slower than sync-full at low load: %v", mean)
	}
	if ratio := mean["full"] / mean["null"]; ratio < 2 {
		t.Errorf("sync-full/null ratio %.1f, want ≥2 (paper ~5x)", ratio)
	}
}

func TestOpenLoopExperimentShape(t *testing.T) {
	p := tiny()
	// A tiny in-flight window makes the overload point shed regardless of
	// host speed: capacity ≈ MaxInFlight/service-time ≈ 1k ops/s here.
	rep, err := OpenLoop(p, OpenLoopConfig{
		Rates:       []float64{200, 5000},
		Duration:    80 * time.Millisecond,
		MaxInFlight: 8,
		QueueBound:  4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4*2 { // 4 schemes × 2 rate points
		t.Fatalf("openloop rows = %d:\n%s", len(rep.Rows), rep)
	}
	out := rep.String()
	for _, want := range []string{"sync-full", "sync-insert", "async-simple", "async-session", "p99", "shed"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "shed by the open-loop gate") || strings.Contains(out, "across all points: 0 ") {
		t.Errorf("overload point shed nothing:\n%s", out)
	}
}

func TestFig8ExperimentShape(t *testing.T) {
	rep, err := Fig8(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 3*2 { // 3 schemes × 2 thread points
		t.Errorf("fig8 rows = %d:\n%s", len(rep.Rows), rep)
	}
	if len(rep.Notes) == 0 {
		t.Error("fig8 missing comparison notes")
	}
}

func TestFig9ExperimentShape(t *testing.T) {
	rep, err := Fig9(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*3 { // 2 schemes × 3 selectivities
		t.Errorf("fig9 rows = %d:\n%s", len(rep.Rows), rep)
	}
}

func TestFig11Experiment(t *testing.T) {
	rep, err := Fig11(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Errorf("fig11 rows = %d:\n%s", len(rep.Rows), rep)
	}
}

func TestScanVsIndexExperiment(t *testing.T) {
	rep, err := ScanVsIndex(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("scanvsindex rows = %d", len(rep.Rows))
	}
	if !strings.Contains(rep.Notes[0], "speedup") {
		t.Errorf("missing speedup note: %v", rep.Notes)
	}
}

func TestAblationDrainShowsLoss(t *testing.T) {
	rep, err := AblationDrain(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
	// Row 0: drain=true must lose nothing. Row 1: drain=false must lose
	// something — that is the whole point of the protocol.
	if rep.Rows[0][1] != "0" {
		t.Errorf("drain-on lost %s entries:\n%s", rep.Rows[0][1], rep)
	}
	if rep.Rows[1][1] == "0" {
		t.Errorf("drain-off lost nothing — ablation shows no effect:\n%s", rep)
	}
}

func TestAblationBlockCache(t *testing.T) {
	rep, err := AblationBlockCache(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestAblationQueueCapacity(t *testing.T) {
	rep, err := AblationQueueCapacity(tiny())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2 {
		t.Fatalf("rows = %d", len(rep.Rows))
	}
}

func TestRecoveryExperiment(t *testing.T) {
	rep, err := Recovery(tiny())
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, row := range rep.Rows {
		if strings.Contains(row[0], "missing") {
			found = true
			if row[1] != "0" {
				t.Errorf("recovery lost %s index entries:\n%s", row[1], rep)
			}
		}
	}
	if !found {
		t.Errorf("missing-entries row absent:\n%s", rep)
	}
}

func TestLocalVsGlobalExperiment(t *testing.T) {
	p := tiny()
	rep, err := LocalVsGlobal(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 6 { // 3 sizes × 2 kinds
		t.Fatalf("rows = %d:\n%s", len(rep.Rows), rep)
	}
	if len(rep.Notes) < 2 {
		t.Errorf("missing trade-off notes:\n%s", rep)
	}
}
