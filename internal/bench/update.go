package bench

import (
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

// setupDB builds a cluster under the profile with the item table and (when
// titleScheme ≥ 0) a title index of the given scheme, loads the records and
// flushes so reads are disk-bound.
func setupDB(p Profile, titleScheme, priceScheme int) (*diffindex.DB, error) {
	db := registerDB(diffindex.Open(p.Options()))
	if err := workload.Setup(db, p.Records, p.RegionsPerTable, titleScheme, priceScheme, p.LoaderThreads); err != nil {
		db.Close()
		return nil, err
	}
	if !db.WaitForIndexes(waitLong) {
		db.Close()
		return nil, fmt.Errorf("bench: indexes did not converge after load")
	}
	if err := db.FlushAll(); err != nil {
		db.Close()
		return nil, err
	}
	return db, nil
}

const waitLong = 120e9 // 120s in ns, as time.Duration

// UpdatePoint is one (scheme, threads) measurement of the update sweep.
type UpdatePoint struct {
	Scheme    string
	Threads   int
	TPS       float64
	MeanNs    float64
	P95Ns     int64
	P99Ns     int64
	QueueLeft int64
}

// RunUpdateSweep produces the data behind Figure 7 (and, at the Cloud
// profile, Figure 10): per scheme, a closed-loop 100%-update workload at
// each thread count, reporting achieved throughput and update latency.
func RunUpdateSweep(p Profile, schemes []SchemeSet) ([]UpdatePoint, error) {
	var points []UpdatePoint
	for _, s := range schemes {
		db, err := setupDB(p, s.Scheme, -1)
		if err != nil {
			return nil, err
		}
		for _, threads := range p.ThreadSweep {
			res := workload.Run(db, workload.RunConfig{
				Records:      p.Records,
				Threads:      threads,
				Duration:     p.RunTime,
				Distribution: "zipfian",
				Seed:         p.SeedFor("update-sweep", int64(threads)),
			})
			lat := res.PerOp[workload.OpUpdate].Snapshot()
			points = append(points, UpdatePoint{
				Scheme:    s.Label,
				Threads:   threads,
				TPS:       res.TPS,
				MeanNs:    lat.Mean,
				P95Ns:     lat.P95,
				P99Ns:     lat.P99,
				QueueLeft: db.PendingIndexUpdates(),
			})
			// Let async queues settle between points so each point
			// measures steady state, not the previous point's backlog.
			db.WaitForIndexes(waitLong)
		}
		db.Close()
	}
	return points, nil
}

// Fig7 regenerates Figure 7: update latency vs throughput for null, insert,
// full and async.
func Fig7(p Profile) (Report, error) {
	points, err := RunUpdateSweep(p, UpdateSchemes())
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig7",
		Title:  "Update performance (latency vs throughput), 100% update, zipfian",
		Header: []string{"scheme", "threads", "TPS", "mean_us", "p95_us", "p99_us"},
	}
	byScheme := map[string][]UpdatePoint{}
	for _, pt := range points {
		byScheme[pt.Scheme] = append(byScheme[pt.Scheme], pt)
		r.AddRow(pt.Scheme, fmt.Sprint(pt.Threads), fmt.Sprintf("%.0f", pt.TPS),
			us(pt.MeanNs), usInt(pt.P95Ns), usInt(pt.P99Ns))
	}

	// The paper's headline (§8.2, abstract): sync-insert and async reduce
	// 60-80% of the index update latency overhead vs the sync-full
	// baseline. Compute the reduction at the lowest thread count, before
	// queueing dominates every scheme equally.
	low := p.ThreadSweep[0]
	lat := func(scheme string) float64 {
		for _, pt := range byScheme[scheme] {
			if pt.Threads == low {
				return pt.MeanNs
			}
		}
		return 0
	}
	base, full, insert, async := lat("null"), lat("full"), lat("insert"), lat("async")
	if full > base {
		insReduction := (full - insert) / (full - base) * 100
		asyncReduction := (full - async) / (full - base) * 100
		r.AddNote("index-update latency overhead reduction vs sync-full at %d thread(s): sync-insert %.0f%%, async %.0f%% (paper: 60-80%%)",
			low, insReduction, asyncReduction)
		r.AddNote("latency ratios at %d thread(s): insert/null %.1fx (paper ~2x), full/null %.1fx (paper ~5x), async/null %.2fx (paper ~1x at low load)",
			low, insert/base, full/base, async/base)
	}
	return r, nil
}

// Fig10 regenerates Figure 10: the update sweep on a 5×-larger virtualized
// cluster, comparing achieved throughput against the base cluster to show
// sub-linear but shape-preserving scale-out.
func Fig10(base Profile) (Report, error) {
	// The scale-out experiment needs the *simulated servers* to be the
	// bottleneck, not this host's CPU: shrink the base cluster and slow
	// its commit path so it saturates well below the simulator's own
	// ceiling, then compare against the 5x cluster. The thread ladder
	// extends past both clusters' saturation points (the paper drives up
	// to 320 client threads).
	base.Servers = 2
	base.RegionsPerTable = 2
	if base.DiskSync < 4*time.Millisecond {
		base.DiskSync = 4 * time.Millisecond
	}
	top := base.ThreadSweep[len(base.ThreadSweep)-1]
	base.ThreadSweep = append(append([]int{}, base.ThreadSweep...), top*2, top*4)
	cloud := Cloud(base)
	basePts, err := RunUpdateSweep(base, UpdateSchemes())
	if err != nil {
		return Report{}, err
	}
	cloudPts, err := RunUpdateSweep(cloud, UpdateSchemes())
	if err != nil {
		return Report{}, err
	}
	r := Report{
		ID:     "fig10",
		Title:  fmt.Sprintf("Scale-out: %d servers vs %d servers (virtualized profile)", base.Servers, cloud.Servers),
		Header: []string{"cluster", "scheme", "threads", "TPS", "mean_us"},
	}
	maxTPS := map[string]float64{} // "cluster/scheme" → max TPS
	record := func(cluster string, pts []UpdatePoint) {
		for _, pt := range pts {
			r.AddRow(cluster, pt.Scheme, fmt.Sprint(pt.Threads), fmt.Sprintf("%.0f", pt.TPS), us(pt.MeanNs))
			key := cluster + "/" + pt.Scheme
			if pt.TPS > maxTPS[key] {
				maxTPS[key] = pt.TPS
			}
		}
	}
	record("base", basePts)
	record("cloud5x", cloudPts)
	for _, s := range UpdateSchemes() {
		b, c := maxTPS["base/"+s.Label], maxTPS["cloud5x/"+s.Label]
		if b > 0 {
			r.AddNote("%s: peak TPS scale-out factor %.1fx on 5x servers (paper: <4x, sub-linear)", s.Label, c/b)
		}
	}
	r.AddNote("relative ordering of schemes must match the base cluster (paper: 'the relative performance of all Diff-Index schemes remain in RC2')")
	return r, nil
}
