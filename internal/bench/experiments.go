package bench

import "fmt"

// Experiment is one regenerable paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(Profile) (Report, error)
}

// Experiments returns the full registry, in the paper's order.
func Experiments() []Experiment {
	return []Experiment{
		{"table2", "Table 2: I/O cost of Diff-Index schemes", Table2},
		{"fig7", "Figure 7: update performance", Fig7},
		{"fig8", "Figure 8: read performance", Fig8},
		{"fig9", "Figure 9: range query latency vs selectivity", Fig9},
		{"fig10", "Figure 10: scale-out on a 5x virtualized cluster", Fig10},
		{"fig11", "Figure 11: async index staleness vs load", Fig11},
		{"asyncpeak", "§8.2: async vs sync-full peak throughput", AsyncVsSyncFullThroughput},
		{"scanvsindex", "§8.2: query-by-index vs parallel table scan", ScanVsIndex},
		{"recovery", "§5.3: drain-before-flush delay and crash recovery", Recovery},
		{"ablate-drain", "ablation: drain-before-flush on vs off", AblationDrain},
		{"ablate-cache", "ablation: block cache on vs off", AblationBlockCache},
		{"ablate-auq", "ablation: AUQ capacity under a write burst", AblationQueueCapacity},
		{"localvsglobal", "§3.1: local vs global index trade-off", LocalVsGlobal},
		{"openloop", "latency under load: open-loop arrival-rate sweep", OpenLoopDefault},
	}
}

// Find returns the experiment with the given ID.
func Find(id string) (Experiment, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("bench: unknown experiment %q", id)
}
