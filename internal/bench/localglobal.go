package bench

import (
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

// LocalVsGlobal quantifies the §3.1 trade-off the paper discusses
// qualitatively: a local index updates cheaply (no remote call — the entry
// co-locates with the row's region) but answers every query by broadcasting
// to all regions, so selective-query cost grows with the cluster; a global
// index pays a remote call per update but serves a selective query from a
// single region regardless of cluster size. The experiment measures both
// operations at increasing cluster sizes.
func LocalVsGlobal(p Profile) (Report, error) {
	r := Report{
		ID:     "localvsglobal",
		Title:  "Local vs global index: update and selective-query latency vs cluster size (§3.1)",
		Header: []string{"servers", "index", "update_us", "query_us"},
	}
	type point struct{ update, query float64 }
	results := map[string]map[int]point{"local": {}, "global": {}}

	for _, servers := range []int{2, 4, 8} {
		for _, kind := range []string{"local", "global"} {
			prof := p
			prof.Servers = servers
			prof.RegionsPerTable = servers
			db := registerDB(diffindex.Open(prof.Options()))
			if err := db.CreateTable(workload.TableName, workload.TableSplits(prof.Records, prof.RegionsPerTable)); err != nil {
				db.Close()
				return Report{}, err
			}
			var err error
			if kind == "local" {
				err = db.CreateLocalIndex(workload.TableName, []string{workload.TitleColumn})
			} else {
				err = db.CreateIndex(workload.TableName, []string{workload.TitleColumn}, diffindex.SyncFull,
					workload.TitleIndexSplits(prof.Records, prof.RegionsPerTable))
			}
			if err != nil {
				db.Close()
				return Report{}, err
			}
			if err := workload.Load(db, prof.Records, prof.LoaderThreads); err != nil {
				db.Close()
				return Report{}, err
			}
			db.FlushAll()
			cl := db.NewClient("lvg")

			// Updates: value-changing puts on distinct items.
			const ops = 32
			start := time.Now()
			for i := int64(0); i < ops; i++ {
				item := (prof.Records / ops) * i
				if _, err := cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
					workload.TitleColumn: workload.UpdatedTitleValue(item, 1),
				}); err != nil {
					db.Close()
					return Report{}, err
				}
			}
			updateMean := float64(time.Since(start).Nanoseconds()) / ops

			// Selective queries: exact match returning one row, warmed.
			for i := int64(0); i < ops; i++ {
				item := (prof.Records / ops) * i
				cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.UpdatedTitleValue(item, 1))
			}
			start = time.Now()
			for i := int64(0); i < ops; i++ {
				item := (prof.Records / ops) * i
				hits, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.UpdatedTitleValue(item, 1))
				if err != nil {
					db.Close()
					return Report{}, err
				}
				if len(hits) != 1 {
					db.Close()
					return Report{}, fmt.Errorf("bench: %s query returned %d hits", kind, len(hits))
				}
			}
			queryMean := float64(time.Since(start).Nanoseconds()) / ops

			results[kind][servers] = point{updateMean, queryMean}
			r.AddRow(fmt.Sprint(servers), kind, us(updateMean), us(queryMean))
			db.Close()
		}
	}

	l2, l8 := results["local"][2], results["local"][8]
	g2, g8 := results["global"][2], results["global"][8]
	if l2.query > 0 && g2.update > 0 {
		r.AddNote("local update stays cheap at every size (%.0f→%.0f µs); global update pays the remote call (%.0f→%.0f µs)",
			l2.update/1e3, l8.update/1e3, g2.update/1e3, g8.update/1e3)
		r.AddNote("local query cost grows with the cluster (broadcast: %.0f→%.0f µs, %.1fx); global stays flat (%.0f→%.0f µs)",
			l2.query/1e3, l8.query/1e3, l8.query/l2.query, g2.query/1e3, g8.query/1e3)
		r.AddNote("this is §3.1's argument for choosing GLOBAL indexes for highly selective queries on big clusters")
	}
	return r, nil
}
