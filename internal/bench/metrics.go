package bench

import (
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"diffindex"
)

// liveDB tracks the DB of the currently running experiment, so diffbench's
// -metrics / -metrics-http flags can observe whichever cluster is live at
// the moment. Experiments open and close many DBs; the pointer always holds
// the most recently opened one (nil between experiments).
var liveDB atomic.Pointer[diffindex.DB]

// registerDB publishes db as the live benchmark DB and returns it, so Open
// call sites can wrap in place.
func registerDB(db *diffindex.DB) *diffindex.DB {
	liveDB.Store(db)
	return db
}

// LiveMetricsHandler serves the live DB's metrics endpoint; it returns 503
// while no experiment has a cluster open.
func LiveMetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		db := liveDB.Load()
		if db == nil {
			http.Error(w, "no experiment running", http.StatusServiceUnavailable)
			return
		}
		db.MetricsHandler().ServeHTTP(w, r)
	})
}

// StartLiveMetricsDump writes the live DB's registry snapshot to w as one
// JSON line per interval (skipping ticks where no DB is open) until stop is
// called. It layers DB.StartMetricsDump over the rotating liveDB pointer.
func StartLiveMetricsDump(w io.Writer, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	done := make(chan struct{})
	go func() {
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		var cur *diffindex.DB
		var curStop func()
		for {
			select {
			case <-done:
				if curStop != nil {
					curStop()
				}
				return
			case <-ticker.C:
				db := liveDB.Load()
				if db == cur {
					continue
				}
				if curStop != nil {
					curStop()
				}
				cur, curStop = db, nil
				if db != nil {
					curStop = db.StartMetricsDump(w, interval)
				}
			}
		}
	}()
	return func() { close(done) }
}
