package bench

import (
	"fmt"

	"diffindex"
	"diffindex/internal/workload"
)

// Fig11 regenerates Figure 11: the distribution of the index-after-data
// time lag (T2 − T1) for async-simple under increasing transaction rates.
// The paper fixes rates at 600-4000 TPS on its cluster; here the ladder is
// derived from the measured saturation throughput so the shape (staleness
// modest until the system nears saturation, then growing sharply) is
// reproduced at any scale.
func Fig11(p Profile) (Report, error) {
	db, err := setupDB(p, int(diffindex.AsyncSimple), -1)
	if err != nil {
		return Report{}, err
	}
	defer db.Close()

	// Find the saturation throughput with an unthrottled burst.
	sat := workload.Run(db, workload.RunConfig{
		Records:      p.Records,
		Threads:      p.ThreadSweep[len(p.ThreadSweep)-1],
		Duration:     p.RunTime,
		Distribution: "zipfian",
		Seed:         p.SeedFor("fig11-saturate", 1),
	})
	db.WaitForIndexes(waitLong)

	r := Report{
		ID:     "fig11",
		Title:  "Async index staleness (T2−T1) vs transaction rate",
		Header: []string{"target_TPS", "achieved_TPS", "lag_p50_us", "lag_p95_us", "lag_p99_us", "lag_max_us"},
	}
	fractions := []float64{0.15, 0.35, 0.70, 1.0}
	var p50s []int64
	for _, f := range fractions {
		target := sat.TPS * f
		db.ResetStaleness()
		res := workload.Run(db, workload.RunConfig{
			Records:      p.Records,
			Threads:      p.ThreadSweep[len(p.ThreadSweep)-1],
			Duration:     p.RunTime,
			TargetTPS:    target,
			Distribution: "zipfian",
			Seed:         p.SeedFor("fig11", int64(f*100)),
		})
		// Include completions that land shortly after the run ends.
		db.WaitForIndexes(waitLong)
		st := db.Staleness()
		r.AddRow(fmt.Sprintf("%.0f", target), fmt.Sprintf("%.0f", res.TPS),
			usInt(st.P50), usInt(st.P95), usInt(st.P999), usInt(st.Max))
		p50s = append(p50s, st.P50)
	}
	if len(p50s) >= 2 && p50s[0] > 0 {
		r.AddNote("median staleness growth from lightest to heaviest load: %.1fx (paper: most entries <100ms at 600-2700 TPS, up to hundreds of seconds at 4000 TPS)",
			float64(p50s[len(p50s)-1])/float64(p50s[0]))
	}
	r.AddNote("saturation throughput measured at %.0f TPS with %d threads", sat.TPS, p.ThreadSweep[len(p.ThreadSweep)-1])
	return r, nil
}

// AsyncVsSyncFullThroughput quantifies the §8.2 observation that async
// reaches ≈30% higher peak throughput than sync-full (4200 vs 3200 TPS in
// the paper), credited to the batching effect of the AUQ.
func AsyncVsSyncFullThroughput(p Profile) (Report, error) {
	r := Report{
		ID:     "asyncpeak",
		Title:  "Peak update throughput: async vs sync-full",
		Header: []string{"scheme", "threads", "peak_TPS"},
	}
	peak := map[string]float64{}
	for _, s := range []SchemeSet{
		{"full", int(diffindex.SyncFull)},
		{"async", int(diffindex.AsyncSimple)},
	} {
		db, err := setupDB(p, s.Scheme, -1)
		if err != nil {
			return Report{}, err
		}
		best, bestThreads := 0.0, 0
		for _, threads := range p.ThreadSweep {
			res := workload.Run(db, workload.RunConfig{
				Records:      p.Records,
				Threads:      threads,
				Duration:     p.RunTime,
				Distribution: "zipfian",
				Seed:         p.SeedFor("asyncpeak", int64(threads)),
			})
			if res.TPS > best {
				best, bestThreads = res.TPS, threads
			}
			db.WaitForIndexes(waitLong)
		}
		peak[s.Label] = best
		r.AddRow(s.Label, fmt.Sprint(bestThreads), fmt.Sprintf("%.0f", best))
		db.Close()
	}
	if peak["full"] > 0 {
		r.AddNote("async peak / sync-full peak = %.2fx (paper: ~1.3x — 4200 vs 3200 TPS)", peak["async"]/peak["full"])
	}
	return r, nil
}
