// Package bench regenerates every table and figure of the paper's
// evaluation (§8) against the simulated cluster: update and read latency vs
// throughput (Figs. 7, 8), range-query selectivity sweeps (Fig. 9),
// scale-out (Fig. 10), async staleness distributions (Fig. 11), the
// I/O-cost table (Table 2), the query-by-index vs table-scan comparison,
// and the recovery-protocol measurements of §5.3.
//
// Absolute numbers are µs-scale (simulated disk and network) rather than
// the paper's ms-scale testbed; the experiments reproduce the paper's
// *shape*: which scheme wins, by roughly what factor, and where the
// crossovers fall. EXPERIMENTS.md records the paper-vs-measured comparison.
package bench

import (
	"fmt"
	"hash/fnv"
	"time"

	"diffindex"
)

// Profile is a calibrated environment for one experiment campaign.
type Profile struct {
	// Name labels the profile in reports.
	Name string
	// Servers is the region-server count (the paper's in-house cluster has
	// 8 data servers; RC2 has 40).
	Servers int
	// Records is the item-table size.
	Records int64
	// RegionsPerTable spreads each table across the cluster.
	RegionsPerTable int
	// LoaderThreads parallelize the load phase.
	LoaderThreads int
	// ThreadSweep is the client-thread ladder (the paper sweeps 1-320).
	ThreadSweep []int
	// RunTime is the measured duration per point.
	RunTime time.Duration

	// The latency model. Calibrated so that an LSM base read (disk) is
	// many times slower than a write, and index updates pay a network
	// round trip — the two asymmetries Diff-Index exploits.
	NetRTT    time.Duration
	NetJitter time.Duration
	DiskRead  time.Duration
	DiskWrite time.Duration
	DiskSync  time.Duration

	// BlockCacheBytes is sized so index tables fit in cache after warmup
	// but the base table does not (§8.1: 7.5 GB of base data per server vs
	// a 2 GB block cache makes base reads disk-bound).
	BlockCacheBytes int64
	// MemtableBytes is the per-region flush threshold.
	MemtableBytes int64

	// Seed is the root seed every per-experiment key stream derives from
	// (via SeedFor). Two runs with the same profile and seed replay the
	// same key sequences; diffbench's -seed flag sets it. Zero means the
	// default root of 1.
	Seed int64
}

// SeedFor derives the seed for one workload stream from the profile's root
// seed. salt names the experiment and k separates streams within it (e.g.
// the thread count of a sweep point), so no two streams collide while all
// remain functions of the single root.
func (p Profile) SeedFor(salt string, k int64) int64 {
	root := p.Seed
	if root == 0 {
		root = 1
	}
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s/%d", root, salt, k)
	return int64(h.Sum64() >> 1) // non-negative
}

// Small returns the quick profile used by `go test -bench` and the default
// diffbench run: a 4-server cluster with a few thousand rows.
//
// The latency model is ms-scale, matching both the paper's 2011-era testbed
// (~8 ms disk seeks, LAN RPCs) and this platform's sleep granularity
// (sub-millisecond sleeps are not schedulable precisely). The calibration
// reproduces the paper's ratios: a bare put ≈ RTT + WAL sync ≈ 3 ms;
// sync-insert adds one index RPC (≈2×); sync-full additionally pays a
// disk-bound base read plus the delete RPC (≈5×).
func Small() Profile {
	return Profile{
		Name:            "small",
		Servers:         4,
		Records:         3000,
		RegionsPerTable: 4,
		LoaderThreads:   16,
		ThreadSweep:     []int{1, 4, 16, 48},
		RunTime:         600 * time.Millisecond,
		NetRTT:          2 * time.Millisecond,
		NetJitter:       time.Millisecond,
		DiskRead:        8 * time.Millisecond,
		DiskWrite:       0, // appends are buffered; the sync pays
		DiskSync:        time.Millisecond,
		BlockCacheBytes: 1 << 20, // 1 MiB: base data (~4.5 MiB) spills, indexes fit
		MemtableBytes:   1 << 20,
	}
}

// Paper returns the full-scale profile mirroring the paper's in-house
// cluster shape: 8 region servers and a larger key space. Experiment
// campaigns at this profile take minutes.
func Paper() Profile {
	p := Small()
	p.Name = "paper"
	p.Servers = 8
	p.Records = 20000
	p.RegionsPerTable = 8
	p.ThreadSweep = []int{1, 4, 16, 64, 160}
	p.RunTime = 2 * time.Second
	p.BlockCacheBytes = 4 << 20
	return p
}

// Cloud returns the Fig. 10 profile: the RC2 virtual cluster — 5× servers
// and records, weaker per-node I/O (virtualization overhead plus contention,
// which the paper blames for its sub-linear scale-out).
func Cloud(base Profile) Profile {
	p := base
	p.Name = base.Name + "-cloud"
	p.Servers = base.Servers * 5
	p.Records = base.Records * 5
	p.RegionsPerTable = base.RegionsPerTable * 5
	p.DiskRead = base.DiskRead * 2
	p.DiskWrite = base.DiskWrite * 2
	p.DiskSync = base.DiskSync * 2
	p.NetJitter = base.NetJitter * 4
	return p
}

// Options converts the profile into DB options.
func (p Profile) Options() diffindex.Options {
	return diffindex.Options{
		Servers:          p.Servers,
		NetRTT:           p.NetRTT,
		NetJitter:        p.NetJitter,
		DiskReadLatency:  p.DiskRead,
		DiskWriteLatency: p.DiskWrite,
		DiskSyncLatency:  p.DiskSync,
		BlockCacheBytes:  p.BlockCacheBytes,
		MemtableBytes:    p.MemtableBytes,
		// Extra APS workers keep the background service ahead of the
		// client load at low transaction rates, as in the paper's Fig. 11
		// (staleness stays small until the system approaches saturation).
		APSWorkers: 4,
		// The paper samples 0.1% for staleness; at our op counts sampling
		// everything is cheap and keeps the histograms well-populated.
		StalenessSampleEvery: 1,
	}
}

// SchemeSet is the scheme ladder the paper compares; -1 is the no-index
// baseline ("null").
type SchemeSet struct {
	Label  string
	Scheme int // diffindex.Scheme, or -1 for no index
}

// UpdateSchemes is the Fig. 7/10 ladder: null, insert, full, async.
func UpdateSchemes() []SchemeSet {
	return []SchemeSet{
		{"null", -1},
		{"insert", int(diffindex.SyncInsert)},
		{"full", int(diffindex.SyncFull)},
		{"async", int(diffindex.AsyncSimple)},
	}
}

// ReadSchemes is the Fig. 8 ladder: full, insert, async.
func ReadSchemes() []SchemeSet {
	return []SchemeSet{
		{"full", int(diffindex.SyncFull)},
		{"insert", int(diffindex.SyncInsert)},
		{"async", int(diffindex.AsyncSimple)},
	}
}
