package bench

import (
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/metrics"
	"diffindex/internal/workload"
)

// Recovery regenerates the §5.3 measurements: (a) the flush delay caused by
// the drain-AUQ-before-flush protocol under write load, and (b) the time
// for a crashed server's regions to recover and its asynchronous index work
// to converge via WAL-replay re-enqueue.
func Recovery(p Profile) (Report, error) {
	r := Report{
		ID:     "recovery",
		Title:  "Drain-before-flush delay and crash recovery (§5.3)",
		Header: []string{"measurement", "value"},
	}

	// (a) Flush delay: flush with an empty AUQ vs flush issued right after
	// a burst of async updates (a populated AUQ must drain first).
	db, err := setupDB(p, int(diffindex.AsyncSimple), -1)
	if err != nil {
		return Report{}, err
	}
	burstN := int64(512)
	if burstN > p.Records {
		burstN = p.Records
	}
	emptyFlush := timeFlush(db)
	burstNoWait(db, p, burstN)
	loadedFlush := timeFlush(db)
	if db.PendingIndexUpdates() != 0 {
		db.Close()
		return Report{}, fmt.Errorf("bench: AUQ not empty after flush (drain protocol violated)")
	}
	r.AddRow("flush, empty AUQ (ms)", msDur(emptyFlush))
	r.AddRow(fmt.Sprintf("flush, after %d-update burst (ms)", burstN), msDur(loadedFlush))
	// The observability registry counts every pre-flush drain and the tasks
	// it waited out — the same numbers a live cluster exposes via
	// diffindex_flush_drains_total / diffindex_flush_drain_tasks_total.
	c, _ := db.Internal()
	drains, _ := c.Metrics().Value("diffindex_flush_drains_total", metrics.L("table", workload.TableName))
	drained, _ := c.Metrics().Value("diffindex_flush_drain_tasks_total", metrics.L("table", workload.TableName))
	r.AddRow("pre-flush AUQ drains (count)", fmt.Sprint(drains))
	r.AddRow("tasks awaited across drains", fmt.Sprint(drained))
	r.AddNote("the loaded flush includes draining the AUQ; the paper argues this delay is acceptable in practice")
	db.Close()

	// (b) Crash recovery: burst of updates, crash a base-hosting server
	// before the APS finishes, measure time until regions are reassigned
	// and the index has converged; verify completeness.
	db, err = setupDB(p, int(diffindex.AsyncSimple), -1)
	if err != nil {
		return Report{}, err
	}
	defer db.Close()
	burstNoWait(db, p, burstN)
	victim := db.LiveServers()[0]
	crashStart := time.Now()
	if err := db.CrashServer(victim); err != nil {
		return Report{}, err
	}
	reassigned := time.Since(crashStart)
	if !db.WaitForIndexes(waitLong) {
		return Report{}, fmt.Errorf("bench: index did not converge after crash")
	}
	converged := time.Since(crashStart)

	// Completeness check: every updated row must be findable via the index.
	cl := db.NewClient("recovery-verify")
	missing := 0
	for i := int64(0); i < burstN; i++ {
		item := i % p.Records
		hits, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.UpdatedTitleValue(item, burstGen(i)))
		if err != nil {
			return Report{}, err
		}
		if len(hits) == 0 {
			missing++
		}
	}
	r.AddRow("region reassignment + WAL replay (ms)", msDur(reassigned))
	r.AddRow("index convergence after crash (ms)", msDur(converged))
	r.AddRow("index entries missing after recovery", fmt.Sprint(missing))
	r.AddNote("missing must be 0: WAL replay re-enqueues every base put into the AUQ and redelivery is idempotent (same-timestamp rule)")
	return r, nil
}

// burstNoWait issues n value-changing updates, each to a distinct item
// (n must not exceed p.Records), without waiting for the APS.
func burstNoWait(db *diffindex.DB, p Profile, n int64) {
	cl := db.NewClient("recovery-burst")
	for i := int64(0); i < n; i++ {
		item := i % p.Records
		cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
			workload.TitleColumn: workload.UpdatedTitleValue(item, burstGen(i)),
		})
	}
}

// burstGen derives the generation used by the recovery burst so the
// verifier can recompute the expected titles. Later writes of the same item
// overwrite earlier ones; generation = burst iteration.
func burstGen(i int64) int64 { return 1000 + i }

func timeFlush(db *diffindex.DB) time.Duration {
	start := time.Now()
	db.FlushAll()
	return time.Since(start)
}
