package bench

import (
	"fmt"

	"diffindex"
	"diffindex/internal/workload"
)

// Table2 regenerates the paper's Table 2 by measurement: for each scheme it
// performs value-changing updates and exact-match reads against a loaded
// table and reports the per-operation I/O counts alongside the paper's
// analytical values. Bracketed counts are asynchronous (performed by the
// APS, off the client's latency path).
func Table2(p Profile) (Report, error) {
	r := Report{
		ID:     "table2",
		Title:  "I/O cost of Diff-Index schemes (measured per operation vs paper)",
		Header: []string{"scheme", "action", "base_put", "base_read", "index_put", "index_read", "paper"},
	}

	type expect struct {
		scheme int
		label  string
		paperU string // paper's update row
		paperR string // paper's read row
	}
	cases := []expect{
		{-1, "no-index", "1/0/0/0", "-"},
		{int(diffindex.SyncFull), "sync-full", "1/1/1+1/0", "0/0/0/1"},
		{int(diffindex.SyncInsert), "sync-insert", "1/0/1/0", "0/K/K/1"},
		{int(diffindex.AsyncSimple), "async-simple", "1/[1]/[1+1]/0", "0/0/0/1"},
	}
	const ops = 64
	for _, c := range cases {
		db, err := setupDB(p, c.scheme, -1)
		if err != nil {
			return Report{}, err
		}
		cl := db.NewClient("table2")

		// Measured update: change the indexed value of existing rows.
		before := db.IOCounts()
		for i := int64(0); i < ops; i++ {
			if _, err := cl.Put(workload.TableName, workload.ItemKey(i), diffindex.Cols{
				workload.TitleColumn: workload.UpdatedTitleValue(i, 1),
			}); err != nil {
				db.Close()
				return Report{}, err
			}
		}
		db.WaitForIndexes(waitLong)
		du := sub(db.IOCounts(), before)
		if c.scheme < 0 {
			// The no-index baseline has no observer, so count the put
			// itself.
			du.BasePut = ops
		}
		r.AddRow(c.label, "update",
			per(du.BasePut, ops),
			fmt.Sprintf("%s + [%s]", per(du.BaseRead, ops), per(du.AsyncBaseRead, ops)),
			fmt.Sprintf("%s + [%s]", per(du.IndexPut+du.IndexDel, ops), per(du.AsyncIndexPut+du.AsyncIndexDel, ops)),
			per(du.IndexRead, ops), c.paperU)

		// Measured read: exact-match lookups returning one row.
		if c.scheme >= 0 {
			before = db.IOCounts()
			for i := int64(0); i < ops; i++ {
				if _, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.UpdatedTitleValue(i, 1)); err != nil {
					db.Close()
					return Report{}, err
				}
			}
			dr := sub(db.IOCounts(), before)
			r.AddRow(c.label, "read",
				per(dr.BasePut, ops),
				per(dr.BaseRead, ops),
				per(dr.IndexPut+dr.IndexDel, ops),
				per(dr.IndexRead, ops), c.paperR)
		}
		db.Close()
	}
	r.AddNote("paper column format: base_put/base_read/index_put/index_read per Table 2; [n] = asynchronous; K = result rows (K=1 here)")
	r.AddNote("sync-full update shows index_put 1+1 only when the update changes the indexed value (the delete of the superseded entry)")
	return r, nil
}

func sub(a, b diffindex.IOCounts) diffindex.IOCounts {
	return diffindex.IOCounts{
		BasePut: a.BasePut - b.BasePut, BaseRead: a.BaseRead - b.BaseRead,
		IndexPut: a.IndexPut - b.IndexPut, IndexDel: a.IndexDel - b.IndexDel,
		IndexRead:     a.IndexRead - b.IndexRead,
		AsyncBaseRead: a.AsyncBaseRead - b.AsyncBaseRead,
		AsyncIndexPut: a.AsyncIndexPut - b.AsyncIndexPut,
		AsyncIndexDel: a.AsyncIndexDel - b.AsyncIndexDel,
	}
}

func per(total int64, ops int64) string {
	return fmt.Sprintf("%.2g", float64(total)/float64(ops))
}
