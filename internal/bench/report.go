package bench

import (
	"fmt"
	"strings"
	"time"

	"diffindex/internal/metrics"
)

// Report is one regenerated table or figure: a titled text table plus
// free-form notes comparing the measured shape to the paper's claim.
type Report struct {
	ID     string // e.g. "fig7"
	Title  string
	Header []string
	Rows   [][]string
	Notes  []string
}

// String renders the report for the terminal.
func (r Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	b.WriteString(metrics.FormatTable(r.Header, r.Rows))
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// AddRow appends a formatted row.
func (r *Report) AddRow(cells ...string) { r.Rows = append(r.Rows, cells) }

// AddNote appends a formatted note.
func (r *Report) AddNote(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// us renders nanoseconds as microseconds with one decimal.
func us(ns float64) string { return fmt.Sprintf("%.1f", ns/1e3) }

// usInt renders an integer nanosecond quantity as microseconds.
func usInt(ns int64) string { return us(float64(ns)) }

// msDur renders a duration in milliseconds.
func msDur(d time.Duration) string { return fmt.Sprintf("%.2f", float64(d.Nanoseconds())/1e6) }
