package bench

import (
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

// Ablations isolate the design choices DESIGN.md calls out: the
// drain-before-flush recovery protocol, the block cache that makes index
// reads fast, and the AUQ sizing that absorbs write bursts.

// AblationDrain demonstrates why the drain-AUQ-before-flush protocol exists
// (§5.3): with the drain disabled, a flush truncates the WAL while index
// work for the flushed data is still queued; a subsequent crash loses that
// work permanently. With the drain on, zero entries are lost.
func AblationDrain(p Profile) (Report, error) {
	r := Report{
		ID:     "ablate-drain",
		Title:  "Ablation: drain-AUQ-before-flush on vs off (crash after flush)",
		Header: []string{"drain", "missing_index_entries", "flush_ms"},
	}
	for _, drain := range []bool{true, false} {
		opts := p.Options()
		opts.UnsafeDisableDrainOnFlush = !drain
		db := registerDB(diffindex.Open(opts))
		if err := workload.Setup(db, p.Records, p.RegionsPerTable, int(diffindex.AsyncSimple), -1, p.LoaderThreads); err != nil {
			db.Close()
			return Report{}, err
		}
		db.WaitForIndexes(waitLong)

		// Stall server↔server index delivery so the burst leaves a real
		// backlog in the AUQ, then flush while the backlog stands.
		servers := db.Servers()
		for i := 0; i < len(servers); i++ {
			for j := i + 1; j < len(servers); j++ {
				db.PartitionNetwork(servers[i], servers[j])
			}
		}
		n := int64(256)
		if n > p.Records {
			n = p.Records
		}
		concurrentBurst(db, p, n)

		var flushTime time.Duration
		if drain {
			// The flush must wait for the AUQ to empty, which requires
			// connectivity: heal shortly after the flush starts and watch
			// it complete only once the queue has drained — the "slightly
			// delayed flush" behavior of §5.3.
			flushDone := make(chan time.Duration, 1)
			go func() {
				start := time.Now()
				db.FlushAll()
				flushDone <- time.Since(start)
			}()
			time.Sleep(50 * time.Millisecond)
			db.HealNetwork()
			flushTime = <-flushDone
			if db.PendingIndexUpdates() != 0 {
				db.Close()
				return Report{}, fmt.Errorf("bench: AUQ not empty after drained flush")
			}
		} else {
			// Without the drain the flush completes immediately — and
			// truncates the WAL out from under the queued entries.
			flushTime = timeFlush(db)
		}

		// Crash every server but one; recovery replays the (now truncated)
		// WALs on the survivor.
		for len(db.LiveServers()) > 1 {
			if err := db.CrashServer(db.LiveServers()[0]); err != nil {
				db.Close()
				return Report{}, err
			}
		}
		db.HealNetwork()
		db.WaitForIndexes(waitLong)

		cl := db.NewClient("ablate-verify")
		missing := 0
		for i := int64(0); i < n; i++ {
			hits, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn},
				workload.UpdatedTitleValue(i%p.Records, burstGen(i)))
			if err != nil {
				db.Close()
				return Report{}, err
			}
			if len(hits) == 0 {
				missing++
			}
		}
		r.AddRow(fmt.Sprint(drain), fmt.Sprint(missing), msDur(flushTime))
		db.Close()
	}
	r.AddNote("with the drain, the flush waits for the AUQ but no index update is ever lost; without it, entries queued at flush time vanish at the next crash")
	return r, nil
}

// concurrentBurst issues n distinct value-changing updates from 8 parallel
// clients, fast enough to outrun a single APS worker.
func concurrentBurst(db *diffindex.DB, p Profile, n int64) {
	const writers = 8
	done := make(chan struct{}, writers)
	for w := int64(0); w < writers; w++ {
		go func(w int64) {
			defer func() { done <- struct{}{} }()
			cl := db.NewClient(fmt.Sprintf("ablate-burst-%d", w))
			for i := w; i < n; i += writers {
				item := i % p.Records
				cl.Put(workload.TableName, workload.ItemKey(item), diffindex.Cols{
					workload.TitleColumn: workload.UpdatedTitleValue(item, burstGen(i)),
				})
			}
		}(w)
	}
	for w := 0; w < writers; w++ {
		<-done
	}
}

// AblationBlockCache measures exact-match index reads with the block cache
// enabled vs disabled: the cache is what keeps the (small) index tables
// memory-resident so sync-full reads stay fast while base reads remain
// disk-bound (§8.1's warmed-cache setup).
func AblationBlockCache(p Profile) (Report, error) {
	r := Report{
		ID:     "ablate-cache",
		Title:  "Ablation: block cache on vs off (exact-match index reads)",
		Header: []string{"cache", "mean_us", "p95_us"},
	}
	for _, cached := range []bool{true, false} {
		opts := p.Options()
		if !cached {
			opts.BlockCacheBytes = -1 // force every block read to disk
		}
		db := registerDB(diffindex.Open(opts))
		if err := workload.Setup(db, p.Records, p.RegionsPerTable, int(diffindex.SyncFull), -1, p.LoaderThreads); err != nil {
			db.Close()
			return Report{}, err
		}
		db.FlushAll()
		warmReads(db, p)
		res := workload.Run(db, workload.RunConfig{
			Records:      p.Records,
			Threads:      8,
			Duration:     p.RunTime,
			Mix:          map[workload.OpKind]float64{workload.OpIndexRead: 1.0},
			Distribution: "uniform",
			Seed:         p.SeedFor("ablate-cache", 13),
		})
		lat := res.PerOp[workload.OpIndexRead].Snapshot()
		r.AddRow(fmt.Sprint(cached), us(lat.Mean), usInt(lat.P95))
		db.Close()
	}
	r.AddNote("without the cache every index lookup pays a simulated disk seek per touched block")
	return r, nil
}

// AblationQueueCapacity measures put latency during a write burst with a
// large vs tiny AUQ: the paper notes that "by assigning a large-size AUQ
// the workload surge can be largely absorbed" (§8.2); a tiny queue
// backpressures the writer instead.
func AblationQueueCapacity(p Profile) (Report, error) {
	r := Report{
		ID:     "ablate-auq",
		Title:  "Ablation: AUQ capacity under a write burst (async-simple)",
		Header: []string{"capacity", "mean_put_us", "p95_put_us", "burst_TPS"},
	}
	for _, capacity := range []int{4096, 4} {
		opts := p.Options()
		opts.AUQCapacity = capacity
		// A single slow worker makes the queue the bottleneck.
		opts.APSWorkers = 1
		db := registerDB(diffindex.Open(opts))
		if err := workload.Setup(db, p.Records, p.RegionsPerTable, int(diffindex.AsyncSimple), -1, p.LoaderThreads); err != nil {
			db.Close()
			return Report{}, err
		}
		db.WaitForIndexes(waitLong)
		res := workload.Run(db, workload.RunConfig{
			Records:      p.Records,
			Threads:      16,
			Duration:     p.RunTime,
			Distribution: "zipfian",
			Seed:         p.SeedFor("ablate-auq", 17),
		})
		lat := res.PerOp[workload.OpUpdate].Snapshot()
		r.AddRow(fmt.Sprint(capacity), us(lat.Mean), usInt(lat.P95), fmt.Sprintf("%.0f", res.TPS))
		db.WaitForIndexes(waitLong)
		db.Close()
	}
	r.AddNote("a large queue absorbs the surge (puts stay fast); a tiny queue backpressures the writers until the APS catches up")
	return r, nil
}
