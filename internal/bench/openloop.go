package bench

import (
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/scale"
	"diffindex/internal/workload"
)

// OpenLoopConfig shapes a `diffbench -openloop` campaign.
type OpenLoopConfig struct {
	// Rates are the offered arrival rates (ops/s) to sweep. Empty derives a
	// ladder from the measured closed-loop saturation of sync-full — one
	// point well under it, one at it, one past it — so the curve always
	// spans the under-load / knee / overload regimes regardless of profile.
	Rates []float64
	// Duration is the arrival-generation window per point (default
	// Profile.RunTime).
	Duration time.Duration
	// MaxInFlight bounds concurrently executing operations (default 64).
	MaxInFlight int
	// QueueBound is how many admitted arrivals may wait for a slot before
	// further arrivals are shed (default MaxInFlight).
	QueueBound int
}

// openLoopSchemes is the full four-scheme ladder the latency-under-load
// curve compares (unlike the update/read figures, session is included:
// its server path is async's, but its client adds the session round).
func openLoopSchemes() []SchemeSet {
	return []SchemeSet{
		{"sync-full", int(diffindex.SyncFull)},
		{"sync-insert", int(diffindex.SyncInsert)},
		{"async-simple", int(diffindex.AsyncSimple)},
		{"async-session", int(diffindex.AsyncSession)},
	}
}

// OpenLoopDefault adapts OpenLoop to the experiment registry.
func OpenLoopDefault(p Profile) (Report, error) { return OpenLoop(p, OpenLoopConfig{}) }

// OpenLoop produces the latency-under-load curve: for each index scheme,
// operations arrive open-loop (Poisson, rate-paced, independent of service
// progress) at each offered rate, and the report records achieved
// throughput, p50/p99 arrival-to-completion latency (queueing included) and
// the shed rate. Closed-loop sweeps (Figs. 7-8) cannot measure this: their
// arrival rate collapses to the service rate when the system saturates, so
// they hide exactly the queueing delay this curve exists to show.
//
// Async schemes run with AUQ admission control armed (AUQMaxBacklog), so
// overload degrades them gracefully — backlog stays bounded and the
// overflow is shed to synchronous maintenance — and the report's auq
// columns show that trade: sheds rise instead of staleness growing without
// bound.
func OpenLoop(p Profile, cfg OpenLoopConfig) (Report, error) {
	if cfg.Duration <= 0 {
		cfg.Duration = p.RunTime
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 64
	}
	if cfg.QueueBound <= 0 {
		cfg.QueueBound = cfg.MaxInFlight
	}
	const auqMaxBacklog = 512

	r := Report{
		ID:    "openloop",
		Title: "Latency under load: open-loop arrival-rate sweep",
		Header: []string{"scheme", "offered_ops_s", "achieved_ops_s", "p50_ms", "p99_ms",
			"shed_rate", "auq_shed", "auq_max_backlog"},
	}

	mix := map[workload.OpKind]float64{
		workload.OpIndexRead: 0.3,
		workload.OpRowRead:   0.2,
		// remaining 0.5 → updates
	}

	var totalShed int64
	for _, s := range openLoopSchemes() {
		opts := p.Options()
		opts.AUQMaxBacklog = auqMaxBacklog
		db := registerDB(diffindex.Open(opts))
		if err := workload.Setup(db, p.Records, p.RegionsPerTable, s.Scheme, -1, p.LoaderThreads); err != nil {
			db.Close()
			return Report{}, err
		}
		if !db.WaitForIndexes(waitLong) {
			db.Close()
			return Report{}, fmt.Errorf("bench: indexes did not converge after load")
		}
		if err := db.FlushAll(); err != nil {
			db.Close()
			return Report{}, err
		}

		if len(cfg.Rates) == 0 {
			// Calibrate once, on the first (slowest) scheme, and share the
			// ladder so every scheme is measured at the same offered rates.
			sat := workload.Run(db, workload.RunConfig{
				Records:      p.Records,
				Threads:      p.ThreadSweep[len(p.ThreadSweep)-1],
				Duration:     cfg.Duration,
				Mix:          mix,
				Distribution: "zipfian",
				Seed:         p.SeedFor("openloop-saturate", 1),
			})
			db.WaitForIndexes(waitLong)
			cfg.Rates = []float64{sat.TPS * 0.5, sat.TPS, sat.TPS * 2}
			r.AddNote("rate ladder derived from %s closed-loop saturation: %.0f ops/s", s.Label, sat.TPS)
		}

		for i, rate := range cfg.Rates {
			shedBefore := db.AUQStats().Shed
			res := scale.RunWorkload(db, scale.Config{
				Rate:        rate,
				Duration:    cfg.Duration,
				MaxInFlight: cfg.MaxInFlight,
				QueueBound:  cfg.QueueBound,
				Seed:        p.SeedFor("openloop-arrivals/"+s.Label, int64(i)),
			}, scale.WorkloadConfig{
				Records:      p.Records,
				Mix:          mix,
				Distribution: "zipfian",
				Seed:         p.SeedFor("openloop-ops/"+s.Label, int64(i)),
			})
			// Sample AUQ pressure before the drain: after WaitForIndexes the
			// backlog is always zero by definition.
			auq := db.AUQStats()
			db.WaitForIndexes(waitLong)
			auq.Shed = db.AUQStats().Shed
			r.AddRow(s.Label,
				fmt.Sprintf("%.0f", rate),
				fmt.Sprintf("%.0f", res.AchievedRate()),
				msDur(time.Duration(res.Latency.Quantile(0.50))),
				msDur(time.Duration(res.Latency.Quantile(0.99))),
				fmt.Sprintf("%.3f", res.ShedRate()),
				fmt.Sprintf("%d", auq.Shed-shedBefore),
				fmt.Sprintf("%d", auq.MaxRegionDepth))
			totalShed += res.Shed
			if res.Errors > 0 {
				r.AddNote("%s @ %.0f ops/s: %d operation errors", s.Label, rate, res.Errors)
			}
			if auq.MaxRegionDepth > auqMaxBacklog {
				r.AddNote("%s @ %.0f ops/s: AUQ backlog %d exceeded cap %d", s.Label, rate, auq.MaxRegionDepth, auqMaxBacklog)
			}
		}
		db.Close()
	}
	r.AddNote("total arrivals shed by the open-loop gate across all points: %d (expected > 0 at the overload rate)", totalShed)
	r.AddNote("p99 includes queueing delay: arrivals are paced independently of completions, so past saturation latency grows with offered rate while closed-loop p99 would plateau")
	return r, nil
}
