package bench

import (
	"fmt"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

// warmReads primes each server's block cache with one pass of index reads,
// matching §8.1: "Read is measured with a warmed block cache".
func warmReads(db *diffindex.DB, p Profile) {
	workload.Run(db, workload.RunConfig{
		Records:      p.Records,
		Threads:      8,
		TotalOps:     p.Records / 4,
		Mix:          map[workload.OpKind]float64{workload.OpIndexRead: 1.0},
		Distribution: "uniform",
		Seed:         p.SeedFor("warm-read", 99),
	})
}

// Fig8 regenerates Figure 8: exact-match index-read latency vs throughput
// for sync-full, sync-insert and async. The query returns one row.
func Fig8(p Profile) (Report, error) {
	r := Report{
		ID:     "fig8",
		Title:  "Read performance (exact-match getByIndex), warmed cache",
		Header: []string{"scheme", "threads", "TPS", "mean_us", "p95_us"},
	}
	meanAtMid := map[string]float64{}
	mid := p.ThreadSweep[len(p.ThreadSweep)/2]
	for _, s := range ReadSchemes() {
		db, err := setupDB(p, s.Scheme, -1)
		if err != nil {
			return Report{}, err
		}
		warmReads(db, p)
		for _, threads := range p.ThreadSweep {
			res := workload.Run(db, workload.RunConfig{
				Records:      p.Records,
				Threads:      threads,
				Duration:     p.RunTime,
				Mix:          map[workload.OpKind]float64{workload.OpIndexRead: 1.0},
				Distribution: "zipfian",
				Seed:         p.SeedFor("fig8", int64(threads)),
			})
			lat := res.PerOp[workload.OpIndexRead].Snapshot()
			r.AddRow(s.Label, fmt.Sprint(threads), fmt.Sprintf("%.0f", res.TPS), us(lat.Mean), usInt(lat.P95))
			if threads == mid {
				meanAtMid[s.Label] = lat.Mean
			}
		}
		db.Close()
	}
	if full, insert := meanAtMid["full"], meanAtMid["insert"]; full > 0 {
		r.AddNote("read latency ratio insert/full at %d threads: %.1fx (paper: sync-insert 'much higher' — it adds a base read per returned row)", mid, insert/full)
	}
	if full, async := meanAtMid["full"], meanAtMid["async"]; full > 0 {
		r.AddNote("read latency ratio async/full at %d threads: %.2fx (paper: 'close to sync-full' but not guaranteed consistent)", mid, async/full)
	}
	return r, nil
}

// Fig9 regenerates Figure 9: range-query latency under varying selectivity
// for sync-full and sync-insert, 10 concurrent client threads. Selectivity
// is reported both as a fraction and as the expected result-set size, since
// the simulated table is smaller than the paper's 40M rows.
func Fig9(p Profile) (Report, error) {
	r := Report{
		ID:     "fig9",
		Title:  "Range query latency vs selectivity (index item_price, 10 threads)",
		Header: []string{"scheme", "selectivity", "rows", "mean_us", "p95_us"},
	}
	selectivities := []float64{0.001, 0.01, 0.1} // → rows = sel × records
	growth := map[string][]float64{}
	for _, s := range []SchemeSet{
		{"full", int(diffindex.SyncFull)},
		{"insert", int(diffindex.SyncInsert)},
	} {
		db, err := setupDB(p, -1, s.Scheme) // price index carries the scheme
		if err != nil {
			return Report{}, err
		}
		warmRange(db, p)
		for _, sel := range selectivities {
			res := workload.Run(db, workload.RunConfig{
				Records:          p.Records,
				Threads:          10,
				Duration:         p.RunTime,
				Mix:              map[workload.OpKind]float64{workload.OpRangeRead: 1.0},
				RangeSelectivity: sel,
				Distribution:     "uniform",
				Seed:             p.SeedFor("fig9", 7),
			})
			lat := res.PerOp[workload.OpRangeRead].Snapshot()
			rows := int64(sel * float64(p.Records))
			r.AddRow(s.Label, fmt.Sprintf("%.4f%%", sel*100), fmt.Sprint(rows), us(lat.Mean), usInt(lat.P95))
			growth[s.Label] = append(growth[s.Label], lat.Mean)
		}
		db.Close()
	}
	gf := func(label string) float64 {
		g := growth[label]
		if len(g) < 2 || g[0] == 0 {
			return 0
		}
		return g[len(g)-1] / g[0]
	}
	r.AddNote("latency growth low→high selectivity: full %.1fx, insert %.1fx (paper: sync-insert grows much faster — each returned row costs a base read double-check)",
		gf("full"), gf("insert"))
	return r, nil
}

func warmRange(db *diffindex.DB, p Profile) {
	workload.Run(db, workload.RunConfig{
		Records:          p.Records,
		Threads:          8,
		TotalOps:         64,
		Mix:              map[workload.OpKind]float64{workload.OpRangeRead: 1.0},
		RangeSelectivity: 0.05,
		Distribution:     "uniform",
		Seed:             p.SeedFor("warm-range", 98),
	})
}

// ScanVsIndex regenerates the §8.2 reference measurement (from the authors'
// earlier report [15]): a highly selective query answered via the global
// index vs a full parallel table scan.
func ScanVsIndex(p Profile) (Report, error) {
	db, err := setupDB(p, int(diffindex.SyncFull), -1)
	if err != nil {
		return Report{}, err
	}
	defer db.Close()
	warmReads(db, p)
	cl := db.NewClient("scanvsindex")

	const probes = 16
	var indexTotal time.Duration
	for i := 0; i < probes; i++ {
		item := (p.Records / probes) * int64(i)
		start := time.Now()
		hits, err := cl.GetByIndex(workload.TableName, []string{workload.TitleColumn}, workload.TitleValue(item))
		if err != nil {
			return Report{}, err
		}
		if len(hits) != 1 {
			return Report{}, fmt.Errorf("bench: index probe returned %d rows", len(hits))
		}
		indexTotal += time.Since(start)
	}
	indexMean := indexTotal / probes

	// The baseline: scan the whole table looking for the same title (no
	// secondary index available to the query).
	start := time.Now()
	rows, err := cl.Scan(workload.TableName, nil, nil, 0)
	if err != nil {
		return Report{}, err
	}
	matches := 0
	probe := string(workload.TitleValue(p.Records / 2))
	for _, row := range rows {
		if string(row.Cols[workload.TitleColumn]) == probe {
			matches++
		}
	}
	scanTime := time.Since(start)
	if matches != 1 {
		return Report{}, fmt.Errorf("bench: table scan found %d matches", matches)
	}

	r := Report{
		ID:     "scanvsindex",
		Title:  "Query-by-index vs full table scan (selective query, 1 row)",
		Header: []string{"method", "latency_ms"},
	}
	r.AddRow("getByIndex", msDur(indexMean))
	r.AddRow("table-scan", msDur(scanTime))
	r.AddNote("speedup %.0fx (paper reports 2-3 orders of magnitude on a 40M-row table; the gap widens with table size)",
		float64(scanTime)/float64(indexMean))
	return r, nil
}
