// Command diffbench regenerates the paper's evaluation artifacts (Table 2,
// Figures 7-11, the async-vs-sync-full peak comparison, the
// query-by-index-vs-scan measurement and the §5.3 recovery numbers) against
// the simulated cluster.
//
// Usage:
//
//	diffbench [-experiment all|<id>] [-profile small|paper]
//	          [-format table|csv] [-list]
//	          [-openloop] [-rate r1,r2,...] [-duration <d>]
//	          [-metrics <interval>] [-metrics-http <addr>]
//
// -openloop runs only the open-loop latency-under-load sweep (equivalent to
// -experiment openloop, with knobs): arrivals are generated at the offered
// -rate ladder (ops/s, comma-separated; empty derives one from measured
// saturation) for -duration per point, and the curve reports p50/p99
// arrival-to-completion latency and the shed rate per index scheme.
//
// -metrics streams the live cluster's metrics registry to stderr as one
// JSON line per interval while experiments run; -metrics-http serves the
// same registry (plus /slowops) over HTTP for watching a long run, e.g.
//
//	diffbench -experiment fig7 -metrics-http localhost:8125 &
//	curl -s localhost:8125/metrics | head
//
// Absolute latencies come from the calibrated ms-scale simulation (disk
// seeks, LAN RPCs); the reports carry notes comparing each measured shape
// to the paper's claim. See EXPERIMENTS.md for the recorded comparison and
// `-list` for all experiment IDs.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"diffindex/internal/bench"
)

func main() {
	var (
		experiment  = flag.String("experiment", "all", "experiment ID, or 'all'")
		profile     = flag.String("profile", "small", "environment profile: small | paper")
		seed        = flag.Int64("seed", 1, "root seed; every experiment's key streams derive from it")
		list        = flag.Bool("list", false, "list experiments and exit")
		format      = flag.String("format", "table", "output format: table | csv")
		metricsInt  = flag.Duration("metrics", 0, "stream live metrics JSON to stderr every interval (0 disables)")
		metricsHTTP = flag.String("metrics-http", "", "serve live metrics over HTTP on this address (e.g. localhost:8125)")
		openLoop    = flag.Bool("openloop", false, "run only the open-loop latency-under-load sweep")
		rates       = flag.String("rate", "", "openloop: offered rates in ops/s, comma-separated (empty = derive from saturation)")
		duration    = flag.Duration("duration", 0, "openloop: arrival window per point (default profile run time)")
	)
	flag.Parse()

	if *metricsInt > 0 {
		stop := bench.StartLiveMetricsDump(os.Stderr, *metricsInt)
		defer stop()
	}
	if *metricsHTTP != "" {
		ln, err := net.Listen("tcp", *metricsHTTP)
		if err != nil {
			fmt.Fprintf(os.Stderr, "metrics-http: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "metrics: serving http://%s/metrics and /slowops\n", ln.Addr())
		go http.Serve(ln, bench.LiveMetricsHandler())
	}

	if *list {
		for _, e := range bench.Experiments() {
			fmt.Printf("%-12s %s\n", e.ID, e.Title)
		}
		return
	}

	var p bench.Profile
	switch *profile {
	case "small":
		p = bench.Small()
	case "paper":
		p = bench.Paper()
	default:
		fmt.Fprintf(os.Stderr, "unknown profile %q (want small or paper)\n", *profile)
		os.Exit(2)
	}
	p.Seed = *seed

	var exps []bench.Experiment
	switch {
	case *openLoop:
		cfg := bench.OpenLoopConfig{Duration: *duration}
		if *rates != "" {
			for _, f := range strings.Split(*rates, ",") {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil || v <= 0 {
					fmt.Fprintf(os.Stderr, "bad -rate entry %q (want a positive ops/s value)\n", f)
					os.Exit(2)
				}
				cfg.Rates = append(cfg.Rates, v)
			}
		}
		exps = []bench.Experiment{{
			ID:    "openloop",
			Title: "latency under load: open-loop arrival-rate sweep",
			Run:   func(p bench.Profile) (bench.Report, error) { return bench.OpenLoop(p, cfg) },
		}}
	case *experiment == "all":
		exps = bench.Experiments()
	default:
		e, err := bench.Find(*experiment)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		exps = []bench.Experiment{e}
	}

	if *format == "table" {
		fmt.Printf("diffbench: profile=%s servers=%d records=%d\n\n", p.Name, p.Servers, p.Records)
	}
	for _, e := range exps {
		start := time.Now()
		rep, err := e.Run(p)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch *format {
		case "csv":
			// One CSV block per experiment, ready for plotting tools: the
			// experiment ID is prefixed as the first column.
			w := csv.NewWriter(os.Stdout)
			w.Write(append([]string{"experiment"}, rep.Header...))
			for _, row := range rep.Rows {
				w.Write(append([]string{rep.ID}, row...))
			}
			w.Flush()
			for _, n := range rep.Notes {
				fmt.Printf("# %s\n", n)
			}
		default:
			fmt.Println(rep.String())
			fmt.Printf("(%s completed in %v)\n\n", e.ID, time.Since(start).Round(time.Millisecond))
		}
	}
}
