// Command lsmtool demonstrates and inspects the LSM storage engine that
// underlies every region: it drives a store through puts, deletes, flushes
// and a compaction, dumping the component structure (WAL segments, SSTable
// files, block indexes, bloom filters) at each stage. Useful for
// understanding how the engine realizes the paper's §2.1 model: append-only
// writes, versioned cells, tombstones, flush and compaction.
//
// Usage:
//
//	lsmtool [-rows 2000] [-versions 3] [-stats]
//	lsmtool verify [-rows 2000] [-tables 4] [-corrupt 0]
//	lsmtool stats [-rows 2000] [-tables 4] [-learned] [-epsilon 8]
//	lsmtool wal tail [-rows 12] [-from seg@off] [-max 0]
//
// -stats attaches a metrics registry to the store and, after the
// walkthrough, dumps every instrument (WAL append counters, per-stage
// latency histograms with p50/p95/p99.9) as stable JSON — the same registry
// layout DB.MetricsSnapshot exposes for a full cluster.
//
// The verify subcommand is the offline integrity sweep: it builds a store,
// flushes -tables SSTables, then re-opens every .sst file and verifies each
// block against its stored CRC32C — the same check the background scrubber
// runs continuously inside a live region. -corrupt N flips one byte in N of
// the files first, demonstrating detection; the process exits non-zero if
// any corruption is found, so the command doubles as a CI gate.
//
// The stats subcommand inspects physical table layout: it flushes -tables
// SSTables (with -learned, each also trains a learned block model at error
// bound -epsilon) and prints every table's format version, block/entry
// counts, restart points, and model summary (segments, ε, marshaled bytes)
// — the on-disk picture behind DESIGN.md §12.
//
// The wal tail subcommand demonstrates the CDC surface (DESIGN.md §13): it
// drives a store with full log retention through puts, a delete, a flush
// and more puts, then tails the WAL from -from (default the log start,
// "0@0"), printing one line per committed data record — position,
// timestamp, kind, key, value — exactly what a DB.Changes consumer sees.
// The flush rolls the log and appends a checkpoint record mid-stream, so
// the output shows positions crossing a segment boundary while meta records
// stay invisible.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
	"diffindex/internal/sstable"
	"diffindex/internal/vfs"
	"diffindex/internal/wal"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "verify" {
		verifyMain(os.Args[2:])
		return
	}
	if len(os.Args) > 1 && os.Args[1] == "stats" {
		statsMain(os.Args[2:])
		return
	}
	if len(os.Args) > 2 && os.Args[1] == "wal" && os.Args[2] == "tail" {
		walTailMain(os.Args[3:])
		return
	}
	rows := flag.Int("rows", 2000, "rows to write per stage")
	versions := flag.Int("versions", 3, "versions retained at compaction")
	stats := flag.Bool("stats", false, "dump the store's metrics registry as JSON at the end")
	flag.Parse()

	var reg *metrics.Registry
	if *stats {
		reg = metrics.NewRegistry()
	}
	fs := vfs.NewMemFS()
	store, err := lsm.Open(lsm.Options{
		FS:                 fs,
		Dir:                "demo",
		MaxVersions:        *versions,
		CompactionFanIn:    3, // so the incremental round below is visibly partial
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		Metrics:            reg,
		MetricsTable:       "demo",
	})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	clock := kv.NewClock(1)

	dump := func(stage string) {
		names, _ := fs.List("demo/")
		fmt.Printf("--- %s ---\n", stage)
		fmt.Printf("memtable: %d bytes; sstables: %d\n", store.MemtableBytes(), store.TableCount())
		for _, n := range names {
			f, err := fs.Open(n)
			if err != nil {
				continue
			}
			sz, _ := f.Size()
			f.Close()
			fmt.Printf("  %-40s %8d bytes\n", n, sz)
		}
		st := store.Stats()
		fmt.Printf("stats: puts=%d deletes=%d gets=%d flushes=%d compactions=%d\n",
			st.Puts, st.Deletes, st.Gets, st.Flushes, st.Compactions)
		if st.Compactions > 0 {
			fmt.Printf("compaction io: read=%dB written=%dB gc-cells=%d tombstones-dropped=%d\n",
				st.CompactionBytesRead, st.CompactionBytesWritten,
				st.CompactionCellsDropped, st.TombstonesDropped)
		}
		if st.CompactionErrors > 0 {
			fmt.Printf("compaction errors: %d (last: %s)\n", st.CompactionErrors, st.LastCompactionError)
		}
		fmt.Println()
	}

	write := func(gen int) {
		for i := 0; i < *rows; i++ {
			key := []byte(fmt.Sprintf("row%08d", i))
			val := []byte(fmt.Sprintf("value-g%d-%d", gen, i))
			if err := store.Put(key, val, clock.Next()); err != nil {
				panic(err)
			}
		}
	}

	fmt.Println("LSM storage engine walkthrough (the paper's Figure 2)")
	fmt.Println()

	write(1)
	dump("after first write burst (all in memtable + WAL)")

	if err := store.Flush(); err != nil {
		panic(err)
	}
	dump("after flush (memtable → C1, WAL rolled forward)")

	write(2)
	store.Flush()
	write(3)
	store.Flush()
	dump("after two more bursts + flushes (C1, C2, C3)")

	// Delete a band of rows, flush the tombstones.
	for i := 0; i < *rows/10; i++ {
		store.Delete([]byte(fmt.Sprintf("row%08d", i)), clock.Next())
	}
	store.Flush()
	dump("after deleting 10% (tombstones flushed)")

	// One incremental tiered round first: it merges at most CompactionFanIn
	// similar-sized tables (bounded work, never the whole store) and — not
	// being at the bottom tier — retains every tombstone.
	if ran, err := store.CompactOnce(); err != nil {
		panic(err)
	} else if ran {
		dump("after one incremental tiered round (bounded fan-in, tombstones retained)")
	}

	if err := store.Compact(); err != nil {
		panic(err)
	}
	dump(fmt.Sprintf("after major compaction (C1..C4 → C1', max %d versions, tombstones GCed)", *versions))

	// Show version visibility.
	key := []byte(fmt.Sprintf("row%08d", *rows-1))
	c, ok, _ := store.Get(key, kv.MaxTimestamp)
	fmt.Printf("newest visible %q = %q (ts %d, found=%v)\n", key, c.Value, c.Ts, ok)
	deleted := []byte("row00000000")
	if _, ok, _ := store.Get(deleted, kv.MaxTimestamp); !ok {
		fmt.Printf("deleted row %q correctly invisible after compaction\n", deleted)
	}

	res, _ := store.Scan([]byte("row00000190"), []byte("row00000210"), kv.MaxTimestamp, 0)
	fmt.Printf("scan across the delete boundary returned %d rows\n", len(res))

	if st := store.Stats(); st.FlushBytes > 0 {
		wa := float64(st.FlushBytes+st.CompactionBytesWritten) / float64(st.FlushBytes)
		fmt.Printf("write amplification: %.2f (flushed %dB, compaction rewrote %dB)\n",
			wa, st.FlushBytes, st.CompactionBytesWritten)
	}

	if reg != nil {
		buf, err := reg.Snapshot().MarshalStableJSON()
		if err != nil {
			panic(err)
		}
		fmt.Println("\n--- metrics registry ---")
		os.Stdout.Write(buf)
		fmt.Println()
	}
}

// verifyMain implements `lsmtool verify`: build a store, flush a handful of
// SSTables, close it so everything is at rest, optionally corrupt some files,
// then sweep every .sst block-by-block exactly like the online scrubber —
// but offline, against closed files, with a per-table report and an exit
// code CI can gate on.
func verifyMain(args []string) {
	fl := flag.NewFlagSet("verify", flag.ExitOnError)
	rows := fl.Int("rows", 2000, "rows to write per flushed table")
	tables := fl.Int("tables", 4, "SSTables to flush before verifying")
	corrupt := fl.Int("corrupt", 0, "flip one byte in this many tables before the sweep")
	fl.Parse(args)

	fs := vfs.NewMemFS()
	store, err := lsm.Open(lsm.Options{
		FS:                 fs,
		Dir:                "demo",
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		DisableScrub:       true,
	})
	if err != nil {
		panic(err)
	}
	clock := kv.NewClock(1)
	for g := 0; g < *tables; g++ {
		for i := 0; i < *rows; i++ {
			key := []byte(fmt.Sprintf("row%08d", g**rows+i))
			val := []byte(fmt.Sprintf("value-g%d-%d", g, i))
			if err := store.Put(key, val, clock.Next()); err != nil {
				panic(err)
			}
		}
		if err := store.Flush(); err != nil {
			panic(err)
		}
	}
	if err := store.Close(); err != nil {
		panic(err)
	}

	names, _ := fs.List("demo/")
	var ssts []string
	for _, n := range names {
		if strings.HasSuffix(n, ".sst") {
			ssts = append(ssts, n)
		}
	}
	// Simulated bit rot: XOR one byte inside the first data block of the
	// first -corrupt tables (read-modify-rewrite; the VFS has no WriteAt).
	for i := 0; i < *corrupt && i < len(ssts); i++ {
		f, err := fs.Open(ssts[i])
		if err != nil {
			panic(err)
		}
		size, _ := f.Size()
		buf := make([]byte, size)
		if _, err := f.ReadAt(buf, 0); err != nil {
			panic(err)
		}
		f.Close()
		buf[64] ^= 0xff
		if err := fs.Remove(ssts[i]); err != nil {
			panic(err)
		}
		g, err := fs.Create(ssts[i])
		if err != nil {
			panic(err)
		}
		if _, err := g.Write(buf); err != nil {
			panic(err)
		}
		g.Close()
		fmt.Printf("corrupted %s (byte 64 flipped)\n", ssts[i])
	}

	fmt.Printf("verifying %d tables\n", len(ssts))
	totalBlocks, totalBytes, totalCorrupt := 0, int64(0), 0
	for _, name := range ssts {
		r, err := sstable.Open(fs, name, nil)
		if err != nil {
			// Unreadable metadata (footer, index, filter or checksum section)
			// is corruption too — the whole table is suspect.
			fmt.Printf("  %-40s UNREADABLE: %v\n", name, err)
			totalCorrupt++
			continue
		}
		blocks, bad := r.NumBlocks(), 0
		var bytes int64
		for i := 0; i < blocks; i++ {
			n, err := r.VerifyBlock(i)
			bytes += int64(n)
			if err != nil {
				bad++
				fmt.Printf("  %-40s block %d FAILED: %v\n", name, i, err)
			}
		}
		status := "ok"
		if !r.HasChecksums() {
			status = "v1 (no checksums, verified vacuously)"
		} else if bad > 0 {
			status = fmt.Sprintf("%d/%d blocks CORRUPT", bad, blocks)
		}
		fmt.Printf("  %-40s %3d blocks %8dB  %s\n", name, blocks, bytes, status)
		totalBlocks += blocks
		totalBytes += bytes
		totalCorrupt += bad
		r.Close()
	}
	fmt.Printf("\nswept %d tables, %d blocks, %d bytes: %d corrupt\n",
		len(ssts), totalBlocks, totalBytes, totalCorrupt)
	if totalCorrupt > 0 {
		os.Exit(1)
	}
}

// walTailMain implements `lsmtool wal tail`: a self-contained CDC demo. It
// builds a store with full log retention (WALRetainSegments = -1, the
// log-as-database mode), applies a small workload spanning a flush, then
// reads the whole WAL back through the same TailLog cursor API the Changes
// feed uses and prints each committed record.
func walTailMain(args []string) {
	fl := flag.NewFlagSet("wal tail", flag.ExitOnError)
	rows := fl.Int("rows", 12, "rows to write before tailing")
	fromStr := fl.String("from", "0@0", "position to tail from (segment@offset)")
	max := fl.Int("max", 0, "stop after this many records (0 = all)")
	fl.Parse(args)

	var from wal.Pos
	if _, err := fmt.Sscanf(*fromStr, "%d@%d", &from.Seg, &from.Off); err != nil {
		fmt.Fprintf(os.Stderr, "bad -from %q: want segment@offset\n", *fromStr)
		os.Exit(2)
	}

	fs := vfs.NewMemFS()
	store, err := lsm.Open(lsm.Options{
		FS:                 fs,
		Dir:                "demo",
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		DisableScrub:       true,
		WALRetainSegments:  -1,
	})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	clock := kv.NewClock(1)
	for i := 0; i < *rows; i++ {
		key := []byte(fmt.Sprintf("row%08d", i))
		if err := store.Put(key, []byte(fmt.Sprintf("value-%d", i)), clock.Next()); err != nil {
			panic(err)
		}
		if i == *rows/2 {
			// Roll the log mid-stream: later records land in a new segment,
			// and the flush's checkpoint meta record is skipped by the tail.
			if err := store.Flush(); err != nil {
				panic(err)
			}
		}
	}
	if err := store.Delete([]byte("row00000000"), clock.Next()); err != nil {
		panic(err)
	}

	fmt.Printf("tailing WAL from %s (active segment %d)\n", from, store.ActiveWALSegment())
	total := 0
	pos := from
	for {
		batch := 256
		if *max > 0 && *max-total < batch {
			batch = *max - total
		}
		if batch == 0 {
			break
		}
		entries, next, gap, err := store.TailWAL(pos, batch)
		if err != nil {
			panic(err)
		}
		if gap > 0 {
			fmt.Printf("WARNING: %d segments truncated below the start position\n", gap)
		}
		if len(entries) == 0 {
			break
		}
		for _, e := range entries {
			kind := "put"
			val := string(e.Record.Value)
			if e.Record.Kind == kv.KindDelete {
				kind, val = "delete", "-"
			}
			fmt.Printf("%-12s ts=%-6d %-6s %-12s %s\n", e.Pos, e.Record.Ts, kind, e.Record.Key, val)
			total++
		}
		pos = next
	}
	fmt.Printf("tailed %d records, resume position %s\n", total, pos)
}

// statsMain implements `lsmtool stats`: flush -tables SSTables (model-backed
// when -learned is set), then re-open each one cold and print its physical
// layout — format version, blocks, entries, restart points, and the learned
// model's segment count / error bound / marshaled size.
func statsMain(args []string) {
	fl := flag.NewFlagSet("stats", flag.ExitOnError)
	rows := fl.Int("rows", 2000, "rows to write per flushed table")
	tables := fl.Int("tables", 4, "SSTables to flush before inspecting")
	learned := fl.Bool("learned", false, "train a learned block model on each table")
	epsilon := fl.Int("epsilon", 0, "model error bound in blocks (0 = default)")
	fl.Parse(args)

	fs := vfs.NewMemFS()
	store, err := lsm.Open(lsm.Options{
		FS:                  fs,
		Dir:                 "demo",
		DisableAutoFlush:    true,
		DisableAutoCompact:  true,
		DisableScrub:        true,
		LearnedIndex:        *learned,
		LearnedIndexEpsilon: *epsilon,
	})
	if err != nil {
		panic(err)
	}
	clock := kv.NewClock(1)
	for g := 0; g < *tables; g++ {
		for i := 0; i < *rows; i++ {
			key := []byte(fmt.Sprintf("row%08d", g**rows+i))
			val := []byte(fmt.Sprintf("value-g%d-%d", g, i))
			if err := store.Put(key, val, clock.Next()); err != nil {
				panic(err)
			}
		}
		if err := store.Flush(); err != nil {
			panic(err)
		}
	}
	if err := store.Close(); err != nil {
		panic(err)
	}

	names, _ := fs.List("demo/")
	fmt.Printf("%-36s %3s %7s %8s %9s %s\n",
		"table", "ver", "blocks", "entries", "restarts", "model")
	for _, name := range names {
		if !strings.HasSuffix(name, ".sst") {
			continue
		}
		r, err := sstable.Open(fs, name, nil)
		if err != nil {
			fmt.Printf("%-36s UNREADABLE: %v\n", name, err)
			continue
		}
		info := r.Info()
		model := "none (binary search)"
		if info.ModelSegments > 0 {
			model = fmt.Sprintf("%d segments, eps=%d, %dB",
				info.ModelSegments, info.ModelEpsilon, info.ModelBytes)
		}
		fmt.Printf("%-36s  v%d %7d %8d %9d %s\n",
			name, info.FormatVersion, info.Blocks, info.Entries, info.Restarts, model)
		r.Close()
	}
}
