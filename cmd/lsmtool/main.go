// Command lsmtool demonstrates and inspects the LSM storage engine that
// underlies every region: it drives a store through puts, deletes, flushes
// and a compaction, dumping the component structure (WAL segments, SSTable
// files, block indexes, bloom filters) at each stage. Useful for
// understanding how the engine realizes the paper's §2.1 model: append-only
// writes, versioned cells, tombstones, flush and compaction.
//
// Usage:
//
//	lsmtool [-rows 2000] [-versions 3] [-stats]
//
// -stats attaches a metrics registry to the store and, after the
// walkthrough, dumps every instrument (WAL append counters, per-stage
// latency histograms with p50/p95/p99.9) as stable JSON — the same registry
// layout DB.MetricsSnapshot exposes for a full cluster.
package main

import (
	"flag"
	"fmt"
	"os"

	"diffindex/internal/kv"
	"diffindex/internal/lsm"
	"diffindex/internal/metrics"
	"diffindex/internal/vfs"
)

func main() {
	rows := flag.Int("rows", 2000, "rows to write per stage")
	versions := flag.Int("versions", 3, "versions retained at compaction")
	stats := flag.Bool("stats", false, "dump the store's metrics registry as JSON at the end")
	flag.Parse()

	var reg *metrics.Registry
	if *stats {
		reg = metrics.NewRegistry()
	}
	fs := vfs.NewMemFS()
	store, err := lsm.Open(lsm.Options{
		FS:                 fs,
		Dir:                "demo",
		MaxVersions:        *versions,
		CompactionFanIn:    3, // so the incremental round below is visibly partial
		DisableAutoFlush:   true,
		DisableAutoCompact: true,
		Metrics:            reg,
		MetricsTable:       "demo",
	})
	if err != nil {
		panic(err)
	}
	defer store.Close()
	clock := kv.NewClock(1)

	dump := func(stage string) {
		names, _ := fs.List("demo/")
		fmt.Printf("--- %s ---\n", stage)
		fmt.Printf("memtable: %d bytes; sstables: %d\n", store.MemtableBytes(), store.TableCount())
		for _, n := range names {
			f, err := fs.Open(n)
			if err != nil {
				continue
			}
			sz, _ := f.Size()
			f.Close()
			fmt.Printf("  %-40s %8d bytes\n", n, sz)
		}
		st := store.Stats()
		fmt.Printf("stats: puts=%d deletes=%d gets=%d flushes=%d compactions=%d\n",
			st.Puts, st.Deletes, st.Gets, st.Flushes, st.Compactions)
		if st.Compactions > 0 {
			fmt.Printf("compaction io: read=%dB written=%dB gc-cells=%d tombstones-dropped=%d\n",
				st.CompactionBytesRead, st.CompactionBytesWritten,
				st.CompactionCellsDropped, st.TombstonesDropped)
		}
		if st.CompactionErrors > 0 {
			fmt.Printf("compaction errors: %d (last: %s)\n", st.CompactionErrors, st.LastCompactionError)
		}
		fmt.Println()
	}

	write := func(gen int) {
		for i := 0; i < *rows; i++ {
			key := []byte(fmt.Sprintf("row%08d", i))
			val := []byte(fmt.Sprintf("value-g%d-%d", gen, i))
			if err := store.Put(key, val, clock.Next()); err != nil {
				panic(err)
			}
		}
	}

	fmt.Println("LSM storage engine walkthrough (the paper's Figure 2)")
	fmt.Println()

	write(1)
	dump("after first write burst (all in memtable + WAL)")

	if err := store.Flush(); err != nil {
		panic(err)
	}
	dump("after flush (memtable → C1, WAL rolled forward)")

	write(2)
	store.Flush()
	write(3)
	store.Flush()
	dump("after two more bursts + flushes (C1, C2, C3)")

	// Delete a band of rows, flush the tombstones.
	for i := 0; i < *rows/10; i++ {
		store.Delete([]byte(fmt.Sprintf("row%08d", i)), clock.Next())
	}
	store.Flush()
	dump("after deleting 10% (tombstones flushed)")

	// One incremental tiered round first: it merges at most CompactionFanIn
	// similar-sized tables (bounded work, never the whole store) and — not
	// being at the bottom tier — retains every tombstone.
	if ran, err := store.CompactOnce(); err != nil {
		panic(err)
	} else if ran {
		dump("after one incremental tiered round (bounded fan-in, tombstones retained)")
	}

	if err := store.Compact(); err != nil {
		panic(err)
	}
	dump(fmt.Sprintf("after major compaction (C1..C4 → C1', max %d versions, tombstones GCed)", *versions))

	// Show version visibility.
	key := []byte(fmt.Sprintf("row%08d", *rows-1))
	c, ok, _ := store.Get(key, kv.MaxTimestamp)
	fmt.Printf("newest visible %q = %q (ts %d, found=%v)\n", key, c.Value, c.Ts, ok)
	deleted := []byte("row00000000")
	if _, ok, _ := store.Get(deleted, kv.MaxTimestamp); !ok {
		fmt.Printf("deleted row %q correctly invisible after compaction\n", deleted)
	}

	res, _ := store.Scan([]byte("row00000190"), []byte("row00000210"), kv.MaxTimestamp, 0)
	fmt.Printf("scan across the delete boundary returned %d rows\n", len(res))

	if st := store.Stats(); st.FlushBytes > 0 {
		wa := float64(st.FlushBytes+st.CompactionBytesWritten) / float64(st.FlushBytes)
		fmt.Printf("write amplification: %.2f (flushed %dB, compaction rewrote %dB)\n",
			wa, st.FlushBytes, st.CompactionBytesWritten)
	}

	if reg != nil {
		buf, err := reg.Snapshot().MarshalStableJSON()
		if err != nil {
			panic(err)
		}
		fmt.Println("\n--- metrics registry ---")
		os.Stdout.Write(buf)
		fmt.Println()
	}
}
