// Command chaoskit runs seeded chaos scenarios against the Diff-Index
// cluster and prints a per-scheme verdict table. Every scenario derives its
// event schedule, fault decision streams and workload key choices from one
// root seed, so a failing run replays bit-identically:
//
//	go run ./cmd/chaoskit -seed 1 -scenarios 5
//
// Scenario i uses seed root+i and rotates through the four index schemes,
// so five scenarios cover every scheme at least once. Exit status is 0 iff
// every scenario upheld every invariant. -elastic additionally runs the
// elastic cluster-dynamics scenario (live server adds, a decommission
// drain, a cold merge and a split under the continuous balancer and AUQ
// admission control) once per scheme. -ablation additionally runs the
// §5.3 drain-on-flush negative control, which must produce violations.
// -integrity additionally runs the silent-corruption pair: a faulted run
// where the background scrubber must detect injected misreads (reported as
// detection latency) and the anti-entropy sweep must repair injected index
// divergence, plus an unfaulted control that must stay entirely clean.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"diffindex"
	"diffindex/internal/chaos"
)

func main() {
	seed := flag.Int64("seed", 1, "root seed; schedule, faults and workload all derive from it")
	scenarios := flag.Int("scenarios", 5, "number of scenarios (index scheme rotates per scenario)")
	servers := flag.Int("servers", 3, "region servers per scenario")
	records := flag.Int64("records", 240, "item-table size")
	threads := flag.Int("threads", 3, "workload threads")
	duration := flag.Duration("duration", 1200*time.Millisecond, "chaos window per scenario")
	elastic := flag.Bool("elastic", false, "also run the elastic cluster-dynamics scenario (adds, decommission, merge, balancer, AUQ admission control) across all four schemes")
	ablation := flag.Bool("ablation", false, "also run the drain-on-flush ablation pair (broken run MUST violate)")
	integrity := flag.Bool("integrity", false, "also run the silent-corruption + index-divergence pair (faulted run + clean control)")
	timetravel := flag.Bool("timetravel", false, "also run the log-as-database crash scenario (torn mid-snapshot; snapshot+tail recovery must equal full replay)")
	trace := flag.Bool("trace", true, "print each scenario's planned event trace")
	compactThreshold := flag.Int("compact-threshold", 0, "per-store SSTable count that arms incremental compaction (0 = chaos default 64, which leaves it cold; try 2 to keep the tiered engine busy)")
	compactFanIn := flag.Int("compact-fanin", 0, "tables merged per compaction round (0 = store default)")
	flag.Parse()

	schemes := []diffindex.Scheme{diffindex.SyncFull, diffindex.SyncInsert, diffindex.AsyncSimple, diffindex.AsyncSession}
	fmt.Printf("chaoskit: %d scenario(s), root seed %d, %d server(s), %d record(s), %v window\n",
		*scenarios, *seed, *servers, *records, *duration)

	type verdict struct {
		name    string
		res     *chaos.Result
		wantBad bool // ablation's broken run is REQUIRED to violate
	}
	var verdicts []verdict
	fail := false

	for i := 0; i < *scenarios; i++ {
		cfg := chaos.ScenarioConfig{
			Seed:                *seed + int64(i),
			Scheme:              schemes[i%len(schemes)],
			Servers:             *servers,
			Records:             *records,
			Threads:             *threads,
			Duration:            *duration,
			CompactionThreshold: *compactThreshold,
			CompactionFanIn:     *compactFanIn,
		}
		fmt.Printf("\n— scenario %d/%d: scheme=%s seed=%d\n", i+1, *scenarios, cfg.Scheme, cfg.Seed)
		res, err := chaos.Run(cfg)
		if err != nil {
			fmt.Printf("  ERROR: %v\n", err)
			fail = true
			continue
		}
		if *trace {
			for _, line := range res.Schedule.Trace() {
				fmt.Println("  " + line)
			}
		}
		report(res)
		verdicts = append(verdicts, verdict{name: fmt.Sprintf("#%d %s", i+1, cfg.Scheme), res: res})
		if !res.OK() {
			fail = true
		}
	}

	if *elastic {
		for i, scheme := range schemes {
			cfg := chaos.ElasticConfig{Seed: *seed + int64(i), Scheme: scheme, AUQMaxBacklog: 64}
			fmt.Printf("\n— elastic %d/%d: scheme=%s seed=%d\n", i+1, len(schemes), scheme, cfg.Seed)
			res, err := chaos.RunElastic(cfg)
			if err != nil {
				fmt.Printf("  ERROR: %v\n", err)
				fail = true
				continue
			}
			if *trace {
				for _, line := range res.Schedule.Trace() {
					fmt.Println("  " + line)
				}
			}
			fmt.Printf("  max AUQ backlog %d (cap %d), shed-to-sync %d\n", res.MaxAUQBacklog, cfg.AUQMaxBacklog, res.AUQShed)
			report(res)
			verdicts = append(verdicts, verdict{name: fmt.Sprintf("elastic %s", scheme), res: res})
			if !res.OK() {
				fail = true
			}
		}
	}

	if *ablation {
		for _, broken := range []bool{false, true} {
			label := "drain ON (control)"
			if broken {
				label = "drain OFF (broken)"
			}
			fmt.Printf("\n— ablation: %s\n", label)
			res, err := chaos.RunDrainAblation(*seed, broken)
			if err != nil {
				fmt.Printf("  ERROR: %v\n", err)
				fail = true
				continue
			}
			report(res)
			verdicts = append(verdicts, verdict{name: "ablation " + label, res: res, wantBad: broken})
			if broken && len(res.Violations) == 0 {
				fmt.Println("  ERROR: broken recovery produced no violations — checkers are blind")
				fail = true
			}
			if !broken && !res.OK() {
				fail = true
			}
		}
	}

	if *integrity {
		fmt.Printf("\n%-22s %8s %14s %9s %6s %9s %9s %8s %11s %8s\n",
			"integrity scenario", "corrupt", "detect-latency", "injected", "found", "repaired", "residual", "checked", "violations", "elapsed")
		for _, faulted := range []bool{true, false} {
			name := "faulted"
			if !faulted {
				name = "control"
			}
			res, err := chaos.RunIntegrity(*seed, faulted)
			if err != nil {
				fmt.Printf("%-22s ERROR: %v\n", name, err)
				fail = true
				continue
			}
			latency := "—"
			if faulted {
				latency = res.DetectionLatency.Round(time.Millisecond).String()
			}
			fmt.Printf("%-22s %8d %14s %9d %6d %9d %9d %8d %11d %8s\n",
				name, res.ScrubCorruptions, latency,
				res.InjectedMissing+res.InjectedStale, res.Found, res.Repaired, res.Residual,
				res.Checked, len(res.Violations), res.Elapsed.Round(time.Millisecond))
			for _, v := range res.Violations {
				fmt.Println("  VIOLATION " + v.String())
			}
			if !res.OK() {
				fail = true
			}
		}
	}

	if *timetravel {
		fmt.Printf("\n— timetravel: crash mid-snapshot, recover, replay-equality + golden as-of reads\n")
		res, err := chaos.RunTimeTravel(*seed)
		if err != nil {
			fmt.Printf("  ERROR: %v\n", err)
			fail = true
		} else {
			fmt.Printf("%-12s %6s %10s %10s %8s %8s %8s %8s %11s %8s\n",
				"", "ops", "snapshots", "snapcells", "replayed", "tailed", "asof", "checked", "violations", "elapsed")
			fmt.Printf("%-12s %6d %10d %10d %8d %8d %8d %8d %11d %8s\n",
				"timetravel", res.Ops, res.Snapshots, res.SnapshotCells,
				res.ReplayedCells, res.TailedRecords, res.AsOfReads,
				res.Checked, len(res.Violations), res.Elapsed.Round(time.Millisecond))
			for _, v := range res.Violations {
				fmt.Println("  VIOLATION " + v.String())
			}
			if !res.OK() {
				fail = true
			}
		}
	}

	fmt.Printf("\n%-28s %8s %6s %7s %8s %11s %10s %8s\n",
		"scenario", "ops", "errs", "faults", "checked", "violations", "converged", "elapsed")
	for _, v := range verdicts {
		r := v.res
		vio := fmt.Sprintf("%d", len(r.Violations))
		if v.wantBad {
			vio += " (expected)"
		}
		fmt.Printf("%-28s %8d %6d %7d %8d %11s %10v %8s\n",
			v.name, r.Ops, r.OpErrors, r.DiskFaults+r.NetDrops+r.NetDelays,
			r.Checked, vio, r.Converged, r.Elapsed.Round(time.Millisecond))
	}
	if fail {
		fmt.Println("\nRESULT: FAIL")
		os.Exit(1)
	}
	fmt.Println("\nRESULT: PASS — every invariant held")
}

func report(res *chaos.Result) {
	for _, n := range res.Notes {
		fmt.Println("  note: " + n)
	}
	for _, v := range res.Violations {
		fmt.Println("  VIOLATION " + v.String())
	}
}
