// Command ycsbload runs the extended-YCSB workload (§8.1) standalone: it
// builds a cluster, loads the item table with the chosen index scheme, runs
// a configurable operation mix, and prints throughput, latency percentiles
// and (for async schemes) index staleness.
//
// Example:
//
//	ycsbload -records 10000 -threads 16 -duration 5s -scheme async-simple \
//	         -updates 0.8 -indexreads 0.2
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"diffindex"
	"diffindex/internal/workload"
)

func main() {
	var (
		servers     = flag.Int("servers", 4, "region servers")
		records     = flag.Int64("records", 10000, "item rows to load")
		threads     = flag.Int("threads", 8, "client threads")
		duration    = flag.Duration("duration", 3*time.Second, "measured run time")
		targetTPS   = flag.Float64("target-tps", 0, "throttle aggregate TPS (0 = unthrottled)")
		schemeName  = flag.String("scheme", "sync-insert", "index scheme: none | sync-full | sync-insert | async-simple | async-session")
		updates     = flag.Float64("updates", 0.5, "update fraction")
		indexReads  = flag.Float64("indexreads", 0.4, "exact-match index read fraction")
		rangeReads  = flag.Float64("rangereads", 0.1, "range read fraction")
		selectivity = flag.Float64("selectivity", 0.001, "range query selectivity")
		dist        = flag.String("distribution", "zipfian", "key distribution: zipfian | uniform | latest")
	)
	flag.Parse()

	scheme := -1
	switch *schemeName {
	case "none":
	case "sync-full":
		scheme = int(diffindex.SyncFull)
	case "sync-insert":
		scheme = int(diffindex.SyncInsert)
	case "async-simple":
		scheme = int(diffindex.AsyncSimple)
	case "async-session":
		scheme = int(diffindex.AsyncSession)
	default:
		fmt.Fprintf(os.Stderr, "unknown scheme %q\n", *schemeName)
		os.Exit(2)
	}

	db := diffindex.Open(diffindex.Options{
		Servers:          *servers,
		NetRTT:           120 * time.Microsecond,
		DiskReadLatency:  250 * time.Microsecond,
		DiskWriteLatency: 5 * time.Microsecond,
		DiskSyncLatency:  10 * time.Microsecond,
	})
	defer db.Close()

	fmt.Printf("loading %d records on %d servers (scheme %s)...\n", *records, *servers, *schemeName)
	start := time.Now()
	if err := workload.Setup(db, *records, *servers, scheme, scheme, 2**servers); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if !db.WaitForIndexes(2 * time.Minute) {
		fmt.Fprintln(os.Stderr, "indexes did not converge after load")
		os.Exit(1)
	}
	if err := db.FlushAll(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("loaded in %v\n", time.Since(start).Round(time.Millisecond))

	mix := map[workload.OpKind]float64{}
	if scheme >= 0 {
		mix[workload.OpIndexRead] = *indexReads
		mix[workload.OpRangeRead] = *rangeReads
	} else {
		mix[workload.OpRowRead] = *indexReads + *rangeReads
	}
	_ = updates // remainder of the mix is updates

	fmt.Printf("running %v with %d threads...\n", *duration, *threads)
	res := workload.Run(db, workload.RunConfig{
		Records:          *records,
		Threads:          *threads,
		Duration:         *duration,
		TargetTPS:        *targetTPS,
		Mix:              mix,
		RangeSelectivity: *selectivity,
		Distribution:     *dist,
		Seed:             time.Now().UnixNano(),
	})

	fmt.Printf("\nops=%d errors=%d throughput=%.0f TPS\n", res.Ops, res.Errors, res.TPS)
	for kind, h := range res.PerOp {
		if h.Count() == 0 {
			continue
		}
		s := h.Snapshot()
		fmt.Printf("%-11s %s\n", kind, s)
	}
	if scheme == int(diffindex.AsyncSimple) || scheme == int(diffindex.AsyncSession) {
		db.WaitForIndexes(2 * time.Minute)
		st := db.Staleness()
		fmt.Printf("index staleness: n=%d p50=%v p95=%v max=%v\n",
			st.Count, time.Duration(st.P50), time.Duration(st.P95), time.Duration(st.Max))
	}
}
